package parbitonic

import (
	"path/filepath"
	"sort"
	"testing"

	"parbitonic/element"
	"parbitonic/internal/obs"
	"parbitonic/internal/workload"
)

// exampleProfilePath is the committed machine profile the planner
// golden tests (and TUNING.md's worked example) are written against.
var exampleProfilePath = filepath.Join("internal", "tune", "testdata", "profile_example.json")

func TestAutoSortSorts(t *testing.T) {
	for _, backend := range []Backend{Simulated, Native} {
		keys := workload.Keys(workload.FullRange, 1<<12, 7)
		res, err := Sort(keys, Config{Auto: true, Backend: backend, ProfilePath: exampleProfilePath, Verify: true})
		if err != nil {
			t.Fatalf("%v: auto sort: %v", backend, err)
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Fatalf("%v: auto sort left keys unsorted", backend)
		}
		if res.Keys != 1<<12 {
			t.Errorf("%v: res.Keys = %d", backend, res.Keys)
		}
	}
}

func TestAutoSortPadded(t *testing.T) {
	keys := workload.Keys(workload.FullRange, 3000, 9) // not a power of two
	_, err := SortPadded(keys, Config{Auto: true, Backend: Native, ProfilePath: exampleProfilePath, Verify: true})
	if err != nil {
		t.Fatalf("auto padded sort: %v", err)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("auto padded sort left keys unsorted")
	}
}

// TestAutoBitIdentical: under the simulated backend, an Auto run must
// be bit-identical (same sorted output, same model time) to a manual
// run of the exact configuration the planner chose — Auto selects the
// plan, it never alters how the plan executes.
func TestAutoBitIdentical(t *testing.T) {
	const n = 1 << 12
	cfg := Config{Auto: true, Backend: Simulated, ProfilePath: exampleProfilePath}
	plan, err := PlanFor[uint32](n, cfg)
	if err != nil {
		t.Fatal(err)
	}

	autoKeys := workload.Keys(workload.FullRange, n, 11)
	manualKeys := workload.Keys(workload.FullRange, n, 11)

	autoRes, err := Sort(autoKeys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	manualRes, err := Sort(manualKeys, plan.Apply(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if autoRes.Time != manualRes.Time {
		t.Errorf("auto model time %v != manual %v", autoRes.Time, manualRes.Time)
	}
	if autoRes.Algorithm != plan.Algorithm || autoRes.Remaps != manualRes.Remaps ||
		autoRes.VolumeSent != manualRes.VolumeSent {
		t.Errorf("auto run diverged from its plan: %+v vs %+v", autoRes, manualRes)
	}
	for i := range autoKeys {
		if autoKeys[i] != manualKeys[i] {
			t.Fatalf("output differs at %d", i)
		}
	}
}

func TestPlanForConstraints(t *testing.T) {
	// Processors caps the plan's P.
	plan, err := PlanFor[uint32](1<<16, Config{Auto: true, Backend: Native, Processors: 2, ProfilePath: exampleProfilePath})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Processors > 2 {
		t.Errorf("plan P = %d exceeds the Processors cap 2", plan.Processors)
	}
	if plan.Backend != Native {
		t.Errorf("plan backend = %v, want the configured Native", plan.Backend)
	}
	if plan.ProfileSource != "calibrated" {
		t.Errorf("plan profile source = %q, want calibrated (committed test profile)", plan.ProfileSource)
	}
	if plan.PredictedUS <= 0 || plan.PredictedUS != plan.ComputeUS+plan.CommUS {
		t.Errorf("plan cost inconsistent: %+v", plan)
	}

	// A missing profile falls back, and says so.
	fb, err := PlanFor[uint32](1<<12, Config{Auto: true, ProfilePath: filepath.Join(t.TempDir(), "none.json")})
	if err != nil {
		t.Fatal(err)
	}
	if fb.ProfileSource != "fallback" {
		t.Errorf("profile source = %q, want fallback", fb.ProfileSource)
	}
}

func TestNewEngineRejectsAuto(t *testing.T) {
	if _, err := NewEngine(Config{Auto: true, Processors: 4}); err == nil {
		t.Fatal("NewEngine must reject Config.Auto (engines are fixed-shape)")
	}
}

// TestAutoObservability: an Auto run emits a plan event into Obs and
// attaches the plan plus a plan-time drift quantity to the Observe
// report.
func TestAutoObservability(t *testing.T) {
	metrics := obs.NewMetrics()
	var rep *SortReport
	keys := workload.Keys(workload.FullRange, 1<<12, 5)
	_, err := Sort(keys, Config{
		Auto:        true,
		Backend:     Native,
		ProfilePath: exampleProfilePath,
		Obs:         metrics,
		Observe:     func(r SortReport) { rep = &r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("Observe not called")
	}
	if rep.Plan == nil {
		t.Fatal("report carries no plan for an Auto run")
	}
	var planTime *DriftQuantity
	for i := range rep.Quantities {
		if rep.Quantities[i].Name == "plan-time" {
			planTime = &rep.Quantities[i]
		}
	}
	if planTime == nil {
		t.Fatal("report has no plan-time drift quantity")
	}
	if planTime.Predicted != rep.Plan.PredictedUS {
		t.Errorf("plan-time predicted %v != plan's %v", planTime.Predicted, rep.Plan.PredictedUS)
	}
	if planTime.Measured != rep.Result.Time {
		t.Errorf("plan-time measured %v != run time %v", planTime.Measured, rep.Result.Time)
	}
	if got := metrics.EventCount(obs.EventPlan); got != 1 {
		t.Errorf("plan events = %v, want 1", got)
	}
}

// TestAutoKVPayload: the planner path must preserve payloads like any
// other sort.
func TestAutoKVPayload(t *testing.T) {
	recs := workload.Elems[element.KV64](workload.FullRange, 1<<10, 3)
	want := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		want[r.K] = r.V
	}
	if _, err := Sort(recs, Config{Auto: true, Backend: Native, ProfilePath: exampleProfilePath, Verify: true}); err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if i > 0 && recs[i-1].K > r.K {
			t.Fatalf("keys out of order at %d", i)
		}
		if want[r.K] != r.V {
			t.Fatalf("payload for key %d changed", r.K)
		}
	}
}
