package parbitonic

import (
	"fmt"
	"math"
	"strings"

	"parbitonic/internal/intbits"
	"parbitonic/internal/logp"
	"parbitonic/internal/schedule"
)

// DriftQuantity pairs one measured run quantity with its closed-form
// model prediction (§3.4). Drift is the measured/predicted ratio: 1.0
// means the run matched the analysis exactly, values away from 1 flag
// model drift — an implementation that communicates more than the
// paper says it should, or a model that no longer describes the code.
type DriftQuantity struct {
	Name      string // "remaps", "volume", "messages", "comm-time"
	Measured  float64
	Predicted float64
}

// Drift returns Measured/Predicted. A zero prediction yields 1 when
// the measurement is also zero (both agree: nothing happened) and +Inf
// otherwise.
func (q DriftQuantity) Drift() float64 {
	if q.Predicted == 0 {
		if q.Measured == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return q.Measured / q.Predicted
}

// SortReport is the model-drift report for one completed sort: the
// run's measured communication metrics paired against the paper's
// closed-form LogP/LogGP predictions for the same configuration.
// Delivered through Config.Observe.
//
// Which quantities appear depends on the configuration:
//
//   - remaps, volume, messages: the three §3.4 metrics, predicted for
//     the bitonic algorithms (for Blocked-Merge the remote steps are
//     pairwise exchanges rather than remaps, so only volume and
//     messages are comparable);
//   - comm-time: per-processor communication time against the
//     TotalShort/TotalLong closed forms — simulator runs only, since
//     native transfers are zero-copy shared-memory handoffs the model
//     does not describe.
//
// Quantities is empty (with Note saying why) when no closed form
// applies: sample sort, radix sort, or a single-processor run.
type SortReport struct {
	Algorithm  Algorithm
	Backend    Backend
	Processors int
	Keys       int
	Result     Result
	Quantities []DriftQuantity
	Note       string // why Quantities is empty, when it is

	// Plan is the autotuner decision that shaped this run, when the
	// sort was configured with Config.Auto (nil otherwise). Auto runs
	// carry one extra drift quantity, "plan-time": measured run time
	// against the plan's predicted cost, so mispredictions are visible
	// in the same report as model drift.
	Plan *Plan
}

// MaxDrift returns the largest relative deviation |measured -
// predicted| / predicted over all quantities (0 for an empty report).
// A healthy simulator run reports ~0; a native run reports the real
// machine's distance from the model.
func (r SortReport) MaxDrift() float64 {
	worst := 0.0
	for _, q := range r.Quantities {
		var dev float64
		if q.Predicted == 0 {
			if q.Measured == 0 {
				continue
			}
			dev = math.Inf(1)
		} else {
			dev = math.Abs(q.Measured-q.Predicted) / q.Predicted
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst
}

// String renders the report as a fixed-width table.
func (r SortReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model-drift report: %v on %v, P=%d, keys=%d\n",
		r.Algorithm, r.Backend, r.Processors, r.Keys)
	if len(r.Quantities) == 0 {
		note := r.Note
		if note == "" {
			note = "no predictions"
		}
		fmt.Fprintf(&b, "  %s\n", note)
		return b.String()
	}
	fmt.Fprintf(&b, "  %-10s %14s %14s %10s\n", "quantity", "measured", "predicted", "drift")
	for _, q := range r.Quantities {
		fmt.Fprintf(&b, "  %-10s %14.6g %14.6g %10.4f\n", q.Name, q.Measured, q.Predicted, q.Drift())
	}
	return b.String()
}

// buildReport evaluates the §3.4 closed forms for the configuration
// that just ran and pairs them with the measured result. total is the
// run's key count (already validated: total = n·P with n and P powers
// of two); words is the element width in 4-byte words — volume and
// message predictions stay in elements (the §3.4 counters), while the
// comm-time closed form scales its volume term by the element width,
// matching what the simulator charges per transferred word.
func buildReport(cfg Config, total, words int, res Result) SortReport {
	rep := SortReport{
		Algorithm:  cfg.Algorithm,
		Backend:    cfg.Backend,
		Processors: cfg.Processors,
		Keys:       total,
		Result:     res,
	}
	p := cfg.Processors
	if p <= 1 {
		rep.Note = "single processor: no communication to predict"
		return rep
	}
	n := total / p
	if n < 2 {
		rep.Note = "fewer than two keys per processor: schedule degenerate"
		return rep
	}
	lgP := intbits.Log2(p)
	lgN := intbits.Log2(total)

	var m logp.Metrics
	withRemaps := true
	switch cfg.Algorithm {
	case SmartBitonic:
		sched := schedule.New(lgN, lgP, cfg.Strategy.schedule())
		m = logp.Metrics{
			Name: "smart",
			R:    len(sched),
			V:    schedule.Volume(sched, n),
			M:    schedule.Messages(sched),
		}
	case CyclicBlockedBitonic:
		m = logp.CyclicBlocked(lgP, n)
	case BlockedMergeBitonic:
		// The model's R counts remote compare-split steps; the runtime
		// executes them as pairwise exchanges, which the Remaps counter
		// does not cover. Volume and messages remain comparable.
		m = logp.Blocked(lgP, n)
		withRemaps = false
	default:
		rep.Note = fmt.Sprintf("no closed-form prediction for %v", cfg.Algorithm)
		return rep
	}

	if withRemaps {
		rep.Quantities = append(rep.Quantities, DriftQuantity{
			Name: "remaps", Measured: float64(res.Remaps), Predicted: float64(m.R),
		})
	}
	rep.Quantities = append(rep.Quantities,
		DriftQuantity{Name: "volume", Measured: float64(res.VolumeSent), Predicted: float64(m.V)},
		DriftQuantity{Name: "messages", Measured: float64(res.MessagesSent), Predicted: float64(m.M)},
	)
	if cfg.Backend == Simulated {
		params := machineConfig(cfg).Model
		tm := m
		tm.V *= words
		pred := tm.LongTime(params)
		if cfg.ShortMessages {
			pred = tm.ShortTime(params)
		}
		rep.Quantities = append(rep.Quantities, DriftQuantity{
			Name: "comm-time", Measured: res.TransferTime, Predicted: pred,
		})
	}
	return rep
}
