package parbitonic_test

import (
	"sort"
	"testing"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/workload"
)

// TestPaddedMaxValueRoundTrip pins the padding contract for every
// element type: SortPadded pads with element.Max and strips exactly
// the pad count of sentinel-valued elements from the tail, so inputs
// that themselves contain the maximal value must come back intact —
// the strip must never eat a genuine key. Lengths are chosen to force
// real padding on every processor count tried.
func TestPaddedMaxValueRoundTrip(t *testing.T) {
	t.Run("u32", func(t *testing.T) { testPaddedMax[uint32](t) })
	t.Run("u64", func(t *testing.T) { testPaddedMax[uint64](t) })
	t.Run("f32", func(t *testing.T) { testPaddedMax[float32](t) })
	t.Run("f64", func(t *testing.T) { testPaddedMax[float64](t) })
	t.Run("kv64", func(t *testing.T) { testPaddedMax[element.KV64](t) })
}

func testPaddedMax[E element.Elem](t *testing.T) {
	mx := element.Max[E]()
	// workload.Elems yields values valid for E (floats need bit
	// patterns inside the non-NaN order window, so elements cannot be
	// minted from raw small integers here).
	base := workload.Elems[E](workload.Uniform31, 11, 1996)
	for _, p := range []int{1, 4, 8} {
		for _, tc := range []struct {
			name string
			in   []E
		}{
			{"max-interleaved", []E{mx, base[0], mx, base[1], mx}},
			{"all-max", []E{mx, mx, mx, mx, mx, mx, mx}},
			{"max-at-head", append([]E{mx}, base...)},
		} {
			in := append([]E(nil), tc.in...)
			want := append([]E(nil), in...)
			sort.SliceStable(want, func(i, j int) bool { return element.Less(want[i], want[j]) })
			if parbitonic.PaddedSize(len(in), p) == len(in) {
				t.Fatalf("p=%d %s: length %d needs no padding, test is vacuous", p, tc.name, len(in))
			}
			if _, err := parbitonic.SortPadded(in, parbitonic.Config{Processors: p}); err != nil {
				t.Fatalf("p=%d %s: SortPadded: %v", p, tc.name, err)
			}
			if len(in) != len(want) {
				t.Fatalf("p=%d %s: length changed: got %d want %d", p, tc.name, len(in), len(want))
			}
			for i := range want {
				if element.Bits(in[i]) != element.Bits(want[i]) || element.Aux(in[i]) != element.Aux(want[i]) {
					t.Fatalf("p=%d %s: wrong element at %d: got %v want %v", p, tc.name, i, in[i], want[i])
				}
			}
		}
	}
}

// TestPaddedMaxKeyRecordsKeepPayloads is the record-mode sharp edge of
// the strip: KV64 records whose key equals the padding sentinel's key
// but whose payloads differ are NOT padding and must all survive with
// their payloads intact.
func TestPaddedMaxKeyRecordsKeepPayloads(t *testing.T) {
	maxK := ^uint64(0)
	recs := []parbitonic.KV64{
		{K: maxK, V: 1}, {K: 5, V: 10}, {K: maxK, V: 2}, {K: 0, V: 11}, {K: maxK, V: 3},
	}
	if _, err := parbitonic.SortPadded(recs, parbitonic.Config{Processors: 4}); err != nil {
		t.Fatalf("SortPadded: %v", err)
	}
	if recs[0] != (parbitonic.KV64{K: 0, V: 11}) || recs[1] != (parbitonic.KV64{K: 5, V: 10}) {
		t.Fatalf("non-max records misplaced: %v", recs)
	}
	seen := map[uint64]bool{}
	for _, r := range recs[2:] {
		if r.K != maxK {
			t.Fatalf("expected max-key record, got %v", r)
		}
		if r.V != 1 && r.V != 2 && r.V != 3 {
			t.Fatalf("max-key record carries foreign payload: %v", r)
		}
		if seen[r.V] {
			t.Fatalf("payload %d duplicated: %v", r.V, recs)
		}
		seen[r.V] = true
	}
}
