package parbitonic

import (
	"context"
	"fmt"
	"time"

	"parbitonic/element"
	"parbitonic/internal/core"
	"parbitonic/internal/intbits"
	"parbitonic/internal/machine"
	"parbitonic/internal/native"
	"parbitonic/internal/obs"
	"parbitonic/internal/psort"
	"parbitonic/internal/schedule"
	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

// EngineOf is a reusable sorting engine over element type E: the
// expensive construction a Sort call pays — worker setup, the P×P
// exchange board, barrier, message-buffer pool — happens once in
// NewEngineOf, and every subsequent Sort call on the engine reuses it,
// along with the engine's recycled input-staging and padding buffers.
// Repeated sorts of similar sizes on one engine therefore allocate
// almost nothing beyond what the algorithms themselves churn.
//
// The package-level Sort functions construct a throwaway engine per
// call; a server that sorts many requests should hold engines instead
// (internal/serve pools them keyed by shape).
//
// An engine is NOT safe for concurrent use: at most one Sort call may
// be in flight at a time. It remains usable after any failure —
// cancellation, deadline, contained panic, or verification failure —
// exactly like the underlying spmd.BackendOf.
type EngineOf[E element.Elem] struct {
	cfg Config
	m   spmd.BackendOf[E]

	// staging holds the previous run's final per-processor slices,
	// recycled as the next run's input staging. They are dropped after a
	// failed run (ownership is unspecified mid-abort) and whenever their
	// lengths no longer fit.
	staging [][]E

	// padBuf is the recycled SortPadded staging buffer. Results are
	// always copied out of it before returning, so no caller ever holds
	// a reference into it across reuse (see TestSortPaddedNoRetention).
	padBuf []E

	// compiled is the core-algorithm body compiled for compiledN keys
	// per processor (core.Compile): schedules, remap plans and gather
	// tables are built once and amortized over every sort of the same
	// size, and a steady-state Sort allocates nothing for them.
	compiled  func(*spmd.ProcOf[E])
	compiledN int

	// single is the recycled one-slice data header of the in-place
	// single-processor path.
	single [][]E
}

// Engine is the uint32 engine, the element type of the paper's
// experiments and of the original single-type API.
type Engine = EngineOf[uint32]

// NewEngineOf validates cfg, builds its execution backend once, and
// returns the reusable engine for element type E. Everything in cfg
// except the per-call key slice is fixed for the engine's lifetime:
// processor count, algorithm, backend, model overrides, telemetry
// sinks.
func NewEngineOf[E element.Elem](cfg Config) (*EngineOf[E], error) {
	if cfg.Auto {
		return nil, fmt.Errorf("parbitonic: Config.Auto is resolved per sort size and cannot build a fixed-shape engine; use the package-level Sort/SortPadded, or PlanFor + Plan.Apply")
	}
	p := cfg.Processors
	if p < 1 || p&(p-1) != 0 {
		return nil, fmt.Errorf("parbitonic: Processors must be a positive power of two, got %d", p)
	}
	if err := validateOverrides(cfg); err != nil {
		return nil, err
	}
	var labels map[string]string
	if cfg.Obs != nil {
		labels = map[string]string{
			"alg":     cfg.Algorithm.String(),
			"backend": cfg.Backend.String(),
			"elem":    element.TypeOf[E]().String(),
		}
	}
	var m spmd.BackendOf[E]
	var err error
	switch cfg.Backend {
	case Native:
		nc := native.Config{P: p, Trace: cfg.Trace, Sink: cfg.Obs, Labels: labels, WrapCharger: cfg.WrapCharger}
		if cfg.Costs != nil {
			nc.Costs = *cfg.Costs
		}
		m, err = native.NewOf[E](nc)
	case Simulated:
		mc := machineConfig(cfg)
		mc.Sink = cfg.Obs
		mc.Labels = labels
		mc.WrapCharger = cfg.WrapCharger
		m, err = machine.NewOf[E](mc)
	default:
		return nil, fmt.Errorf("parbitonic: unknown backend %v", cfg.Backend)
	}
	if err != nil {
		return nil, err
	}
	return &EngineOf[E]{cfg: cfg, m: m}, nil
}

// NewEngine builds a uint32 engine; see NewEngineOf.
func NewEngine(cfg Config) (*Engine, error) { return NewEngineOf[uint32](cfg) }

// P returns the engine's processor count.
func (e *EngineOf[E]) P() int { return e.cfg.Processors }

// Config returns a copy of the configuration the engine was built with.
func (e *EngineOf[E]) Config() Config { return e.cfg }

// Close releases the engine's backend resources — in particular the
// native backend's parked worker goroutines — deterministically.
// Idempotent; must not be called while a sort is in flight, and the
// engine is unusable afterwards. Engines that are simply dropped are
// still reclaimed (a finalizer stops the workers once the engine is
// collected); Close just makes the release prompt.
func (e *EngineOf[E]) Close() {
	if c, ok := e.m.(interface{ Close() }); ok {
		c.Close()
	}
}

// Sort sorts keys in place (ascending by key) and returns the run
// statistics; see the package-level Sort for the shape requirements.
// It is SortContext with a background context.
func (e *EngineOf[E]) Sort(keys []E) (Result, error) {
	return e.SortContext(context.Background(), keys)
}

// rejectNaN returns an error when a float workload contains a NaN key.
// The bitonic networks (and the radix order images) give NaN a
// well-defined place after +Inf, but "sorted" output containing NaN
// violates the transitivity callers expect of float comparisons, so
// the API refuses it up front. Non-float element types scan nothing.
func rejectNaN[E element.Elem](keys []E) error {
	switch any(*new(E)).(type) {
	case float32, float64:
		for i, k := range keys {
			if element.IsNaN(k) {
				return fmt.Errorf("parbitonic: keys[%d] is NaN; NaN keys are not sortable", i)
			}
		}
	}
	return nil
}

// SortContext sorts keys in place under ctx, reusing the engine's
// backend and staging buffers. len(keys) must divide into
// power-of-two per-processor shares exactly as for the package-level
// Sort; failure semantics are those of the package-level SortContext.
func (e *EngineOf[E]) SortContext(ctx context.Context, keys []E) (Result, error) {
	cfg := e.cfg
	p := cfg.Processors
	if len(keys) == 0 || len(keys)%p != 0 {
		return Result{}, fmt.Errorf("parbitonic: %d keys cannot be divided over %d processors", len(keys), p)
	}
	n := len(keys) / p
	if n&(n-1) != 0 {
		return Result{}, fmt.Errorf("parbitonic: keys per processor (%d) must be a power of two", n)
	}
	if err := rejectNaN(keys); err != nil {
		return Result{}, err
	}

	var sum verify.Checksum
	if cfg.Verify {
		sum = verify.Sum(keys)
	}

	// Single-processor bitonic runs sort the caller's slice in place:
	// with lg P = 0 all three bitonic algorithms reduce to one local
	// radix sort that never swaps or pools its Data array, so the
	// staging copy-in and copy-out are pure overhead. The caller's
	// slice must then never be retained as staging (see below) — the
	// engine would otherwise scribble over it on the next run.
	inPlace := p == 1 && (cfg.Algorithm == SmartBitonic ||
		cfg.Algorithm == CyclicBlockedBitonic || cfg.Algorithm == BlockedMergeBitonic)
	var data [][]E
	if inPlace {
		if e.single == nil {
			e.single = make([][]E, 1)
		}
		e.single[0] = keys
		data = e.single
	} else {
		data = e.stage(keys, p, n)
	}

	var res spmd.Result
	var err error
	switch cfg.Algorithm {
	case SmartBitonic, CyclicBlockedBitonic, BlockedMergeBitonic:
		// The compiled body depends only on the engine's fixed config
		// and the per-processor share n, so repeated sorts of one size
		// reuse it — schedule, remap plans and gather tables included.
		if e.compiled == nil || e.compiledN != n {
			e.compiled, err = core.Compile[E](p, n, coreOptions(cfg, p, n))
			if err != nil {
				e.compiledN = 0
				break
			}
			e.compiledN = n
		}
		res, err = e.m.RunContext(ctx, data, e.compiled)
	case SampleSort:
		var sres psort.SampleSortResult
		sres, err = psort.SampleSortContext(ctx, e.m, data)
		res = sres.Result
	case RadixSort:
		res, err = psort.RadixSortContext(ctx, e.m, data)
	default:
		err = fmt.Errorf("parbitonic: unknown algorithm %v", cfg.Algorithm)
	}
	if err != nil {
		// After an abort the processors' slices are unspecified — they
		// may alias buffers the backend has already reclaimed — so they
		// must not seed the next run's staging. (An in-place run never
		// consumed the staging, which stays valid for the next run.)
		if !inPlace {
			e.staging = nil
		}
		return Result{}, err
	}

	final := e.m.Data()
	if cfg.Verify {
		if verr := verify.Distributed(final, sum); verr != nil {
			if cfg.Obs != nil {
				cfg.Obs.Emit(obs.Event{
					Kind:   obs.EventVerifyFailure,
					Clock:  res.Time,
					Detail: verr.Error(),
					Wall:   time.Now().UnixNano(),
				})
			}
			if !inPlace {
				e.staging = final // the run completed; the slices are owned
			}
			return Result{}, verr
		}
	}

	pos := 0
	for _, d := range final {
		if len(d) > 0 && pos < len(keys) && &d[0] == &keys[pos] {
			pos += len(d) // in-place run: the result is already here
			continue
		}
		pos += copy(keys[pos:], d)
	}
	// The completed run's output slices become the next run's staging —
	// except after an in-place run, whose only slice is the caller's.
	if !inPlace {
		e.staging = final
	}
	if pos != len(keys) {
		return Result{}, fmt.Errorf("parbitonic: internal error, %d of %d keys returned", pos, len(keys))
	}

	result := Result{
		Algorithm:    cfg.Algorithm,
		Keys:         len(keys),
		Time:         res.Time,
		Remaps:       res.Mean.Remaps,
		VolumeSent:   res.Mean.VolumeSent,
		MessagesSent: res.Mean.MessagesSent,
		ComputeTime:  res.Mean.ComputeTime,
		PackTime:     res.Mean.PackTime,
		TransferTime: res.Mean.TransferTime,
		UnpackTime:   res.Mean.UnpackTime,
	}
	if cfg.Observe != nil {
		cfg.Observe(buildReport(cfg, len(keys), element.Words[E](), result))
	}
	return result, nil
}

// coreOptions maps the public Config to core.Options for the three
// bitonic algorithms at machine shape (p, n).
func coreOptions(cfg Config, p, n int) core.Options {
	opts := core.Options{Fused: cfg.FusePackUnpack}
	switch cfg.Algorithm {
	case CyclicBlockedBitonic:
		opts.Algorithm = core.CyclicBlocked
	case BlockedMergeBitonic:
		opts.Algorithm = core.BlockedMerge
	default:
		opts.Algorithm = core.Smart
	}
	opts.Strategy = cfg.Strategy.schedule()
	if cfg.SimulateSteps || opts.Strategy != schedule.Head {
		opts.Compute = core.Simulated
	}
	if cfg.Backend == Native && opts.Algorithm == core.Smart && !cfg.SimulateSteps {
		// Natively the fused path is simply the fast one — there is
		// no model-ablation reason to keep pack/unpack separate.
		opts.Fused = true
	}
	if opts.Fused && opts.Algorithm == core.Smart && !cfg.SimulateSteps {
		lgn, lgP := intbits.Log2(n), intbits.Log2(p)
		if p == 1 || lgP*(lgP+1)/2 <= lgn {
			opts.Compute = core.FullSort
		}
	}
	return opts
}

// stage copies keys into p per-processor slices of n keys each,
// recycling the previous run's output slices when they are long
// enough. Recycled slices are resliced by length, never by capacity:
// a slice's backing array is owned outright only up to its length
// once it has passed through the backend's buffer churn.
func (e *EngineOf[E]) stage(keys []E, p, n int) [][]E {
	data := e.staging
	if len(data) != p {
		data = make([][]E, p)
	}
	for i := range data {
		if len(data[i]) >= n {
			data[i] = data[i][:n]
		} else {
			data[i] = make([]E, n)
		}
		copy(data[i], keys[i*n:(i+1)*n])
	}
	// The engine run consumes the slices; forget them until the run
	// hands back its output set.
	e.staging = nil
	return data
}

// SortPadded sorts keys of arbitrary length by padding with maximal
// keys to the next valid shape, exactly like the package-level
// SortPadded, but staging the padded run in a buffer the engine
// recycles across calls. The sorted result is always copied back into
// keys — the caller never receives a view into the recycled buffer.
// It is SortPaddedContext with a background context.
func (e *EngineOf[E]) SortPadded(keys []E) (Result, error) {
	return e.SortPaddedContext(context.Background(), keys)
}

// SortPaddedContext is SortPadded under a context; see SortContext for
// failure semantics.
func (e *EngineOf[E]) SortPaddedContext(ctx context.Context, keys []E) (Result, error) {
	p := e.cfg.Processors
	if len(keys) == 0 {
		return Result{}, fmt.Errorf("parbitonic: no keys")
	}
	total := PaddedSize(len(keys), p)
	if total == len(keys) {
		return e.SortContext(ctx, keys)
	}
	if cap(e.padBuf) < total {
		e.padBuf = make([]E, total)
	}
	padded := e.padBuf[:total]
	copy(padded, keys)
	pad := element.Max[E]()
	for i := len(keys); i < total; i++ {
		padded[i] = pad
	}
	res, err := e.SortContext(ctx, padded)
	if err != nil {
		return Result{}, err
	}
	// All padding elements are the maximal element, so they sort to the
	// tail — possibly interleaved with genuine elements that equal the
	// maximum. Strip exactly the pad count of sentinel-valued elements
	// from the tail; everything else (including genuine maximal-key
	// records, whose payloads differ from the sentinel's) is kept, so
	// the result is exactly the sorted input multiset.
	padCount := total - len(keys)
	j := len(keys) - 1
	for i := total - 1; i >= 0; i-- {
		if padCount > 0 && padded[i] == pad {
			padCount--
			continue
		}
		if j < 0 {
			return Result{}, fmt.Errorf("parbitonic: internal error, padding strip found too many keys")
		}
		keys[j] = padded[i]
		j--
	}
	if j != -1 || padCount != 0 {
		return Result{}, fmt.Errorf("parbitonic: internal error, padding strip lost keys (%d left, %d pads unmatched)", j+1, padCount)
	}
	return res, nil
}

// PaddedSize returns the padded key count a SortPadded run of `keys`
// keys uses on p processors: the smallest total that divides into
// power-of-two per-processor shares of at least 2 keys (for p > 1) and
// holds the input. It is what batching layers must size their padded
// buffers to.
func PaddedSize(keys, p int) int {
	n := intbits.CeilPow2((keys + p - 1) / p)
	if p > 1 && n < 2 {
		n = 2 // the bitonic algorithms need at least two keys per processor
	}
	return n * p
}
