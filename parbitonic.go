// Package parbitonic is a Go reproduction of "Optimizing Parallel
// Bitonic Sort" (Ionescu, UCSB 1996 / IPPS 1997): a communication- and
// computation-optimal parallel bitonic sort for coarse-grained
// machines, together with the baselines and comparator sorts the paper
// evaluates against, all running on a pluggable SPMD runtime: by
// default a simulated distributed-memory machine with LogP/LogGP
// virtual-time accounting, or — with Config{Backend: Native} — a real
// shared-memory parallel execution at wall-clock speed.
//
// The quickest way in:
//
//	keys := workload-like random data
//	res, err := parbitonic.Sort(keys, parbitonic.Config{Processors: 16})
//	// keys is now sorted; res carries the model time and communication
//	// counters (remaps, volume, messages, phase breakdown).
//
// To sort fast rather than to model, run the same algorithm natively:
//
//	res, err := parbitonic.Sort(keys, parbitonic.Config{
//		Processors: 8, Backend: parbitonic.Native,
//	})
//	// res.Time is now measured wall-clock microseconds.
//
// The paper's algorithm is Config{Algorithm: SmartBitonic} (the
// default): it remaps data between "smart" layouts so that exactly
// lg(N/P) network steps execute locally after every remap — the
// provable maximum — and replaces all local compare-exchange work with
// linear-time sorts of bitonic sequences.
package parbitonic

import (
	"context"
	"fmt"
	"math"

	"parbitonic/element"
	"parbitonic/internal/bitseq"
	"parbitonic/internal/logp"
	"parbitonic/internal/machine"
	"parbitonic/internal/obs"
	"parbitonic/internal/schedule"
	"parbitonic/internal/spmd"
	"parbitonic/internal/trace"
	"parbitonic/internal/verify"
)

// Backend selects the execution backend the algorithms run on.
type Backend int

const (
	// Simulated runs on the virtual-time LogP/LogGP simulator: Result
	// times are model microseconds on the modelled machine (the paper's
	// Meiko CS-2 by default). This is the default.
	Simulated Backend = iota
	// Native runs the same SPMD algorithm bodies as real goroutines at
	// wall-clock speed on the host: Result times are measured
	// microseconds, and no model arithmetic runs on the hot path.
	Native
)

func (b Backend) String() string {
	switch b {
	case Simulated:
		return "simulated"
	case Native:
		return "native"
	}
	return "unknown"
}

// Algorithm selects the parallel sorting algorithm.
type Algorithm int

const (
	// SmartBitonic is the paper's contribution: the minimum-remap smart
	// data layout (Chapter 3) with optimized local computation
	// (Chapter 4).
	SmartBitonic Algorithm = iota
	// CyclicBlockedBitonic alternates blocked and cyclic layouts
	// ([CDMS94], §2.3) — two remaps per stage. Requires N >= P².
	CyclicBlockedBitonic
	// BlockedMergeBitonic keeps a fixed blocked layout with pairwise
	// remote compare-split steps ([BLM+91], §5.3).
	BlockedMergeBitonic
	// SampleSort is the one-pass parallel sample sort of [AISS95],
	// the §5.5 comparator.
	SampleSort
	// RadixSort is the parallel LSD radix sort of [AISS95], the other
	// §5.5 comparator.
	RadixSort
)

func (a Algorithm) String() string {
	switch a {
	case SmartBitonic:
		return "smart-bitonic"
	case CyclicBlockedBitonic:
		return "cyclic-blocked-bitonic"
	case BlockedMergeBitonic:
		return "blocked-merge-bitonic"
	case SampleSort:
		return "sample-sort"
	case RadixSort:
		return "radix-sort"
	}
	return "unknown"
}

// Config configures a sort. The zero value plus a Processors count is a
// sensible default: the smart algorithm, long messages, optimized local
// computation, Meiko-CS-2-like model parameters.
type Config struct {
	// Processors is the machine size P (power of two, >= 1): simulated
	// processors under the Simulated backend, worker goroutines under
	// Native. Under Auto it is instead the cap on the processor counts
	// the planner may choose (0 = GOMAXPROCS).
	Processors int

	Algorithm Algorithm

	// Auto lets the cost-model planner choose Algorithm, Processors
	// and Strategy per sort, from the data size, the element type and
	// the machine profile (internal/tune; see TUNING.md). Backend is
	// respected, not chosen: plans are scored in the backend's own
	// time unit. Auto applies to the package-level Sort/SortPadded
	// functions — engines are fixed-shape, so NewEngineOf rejects it;
	// resolve explicitly with PlanFor + Plan.Apply to pool engines.
	Auto bool

	// ProfilePath overrides where Auto reads the machine profile;
	// empty means the default user-cache location (tune.DefaultPath),
	// falling back to shipped defaults when no profile exists.
	ProfilePath string

	// Backend selects where the sort runs: the virtual-time simulator
	// (default) or the native wall-clock runtime. Model-shaping options
	// (ShortMessages, Model) apply only to the simulator.
	Backend Backend

	// ShortMessages switches the remaps to elementwise transfers
	// (§3.3's baseline); the default is long messages.
	ShortMessages bool

	// SimulateSteps replaces the optimized local computation with the
	// step-by-step compare-exchange simulation (the Chapter 4 ablation;
	// bitonic algorithms only).
	SimulateSteps bool

	// FusePackUnpack folds packing/unpacking into the local sorts
	// (§4.3; SmartBitonic without step simulation only). In the usual
	// regime (lgP(lgP+1)/2 <= lg(N/P)) this runs the fully fused
	// FullSort implementation — one p-way merge per remap, no separate
	// pack/unpack passes at all (§4.1, Figure 4.8); outside it the
	// optimized implementation runs with the fusion accounted in the
	// cost model.
	FusePackUnpack bool

	// Strategy shifts the smart remaps relative to the step stream
	// (Lemma 5). Non-Head strategies imply SimulateSteps (the optimized
	// local computation is derived for the Head alignment).
	Strategy RemapStrategy

	// Model overrides the LogGP machine parameters; nil uses
	// Meiko-CS-2-like defaults.
	Model *ModelParams

	// Costs overrides the local-computation cost model; nil uses the
	// calibrated defaults.
	Costs *machine.CostModel

	// Trace, when non-nil, records every processor's virtual-time spans
	// (compute/pack/transfer/unpack/barrier-wait) during the sort; use
	// its Timeline method to render a Gantt view. The zero value of
	// TraceRecorder is ready to use.
	Trace *TraceRecorder

	// Verify runs a post-sort invariant check over the output: every
	// processor's keys ascending, processor boundaries in order, and
	// multiset preservation against an input checksum taken before the
	// sort. A violation is returned as a *VerifyError naming the first
	// broken invariant. Costs one extra O(N) pass over input and
	// output.
	Verify bool

	// Obs, when non-nil, receives the run's full observability stream:
	// run metadata at start, per-processor phase spans flushed at every
	// barrier, runtime events (aborts, injected faults, verification
	// failures), and a run summary at the end. It also enables pprof
	// goroutine labels (proc/phase/alg/backend) on the worker
	// goroutines. Ready-made sinks live in internal/obs: ChromeTrace
	// (Perfetto-loadable trace JSON), Metrics (Prometheus/expvar
	// export), SlogSink (structured logs); combine with obs.Multi. Nil
	// costs nothing on the hot path.
	Obs Sink

	// Observe, when non-nil, is called after a successful sort with the
	// model-drift report: the run's measured communication metrics
	// paired against the paper's §3.4 closed-form predictions. See
	// SortReport.
	Observe func(SortReport)

	// WrapCharger, when non-nil, wraps the backend's phase charger
	// before the engine is built — the seam deterministic fault
	// injection (internal/fault) hooks into, so chaos can be driven
	// through the public API and through long-lived pooled engines
	// (internal/serve). The parameter types live in an internal
	// package: this field is for module-internal tooling; external
	// callers leave it nil.
	WrapCharger func(spmd.Charger) spmd.Charger
}

// Sink is the observability consumer interface; see Config.Obs and
// internal/obs.
type Sink = obs.Sink

// KV64 is the key+payload record element (64-bit key, 64-bit payload),
// re-exported from parbitonic/element. Sorting []KV64 orders records
// by K and carries V along; see the element package for the full list
// of sortable element types (uint32, uint64, float32, float64, KV64).
type KV64 = element.KV64

// VerifyError reports a failed Config.Verify check: the sort returned,
// but its output violates a result invariant (Invariant is
// "local-sorted", "boundary-order" or "multiset"). Match with
// errors.As. When verification fails the input slice's contents are
// the corrupted output — do not use them.
type VerifyError = verify.Error

// TraceRecorder collects per-processor virtual-time events; see
// Config.Trace.
type TraceRecorder = trace.Recorder

// RemapStrategy selects how the smart remaps are shifted relative to
// the network's step stream (Lemma 5).
type RemapStrategy int

const (
	// HeadRemap executes lg n steps after every remap except the last —
	// the paper's default.
	HeadRemap RemapStrategy = iota
	// TailRemap executes the leftover steps after the first remap; it
	// transfers no more data than HeadRemap (Lemma 5).
	TailRemap
	// MiddleRemap1 splits the leftover across both ends, adding a remap.
	MiddleRemap1
	// MiddleRemap2 shifts the remaps left without changing their count.
	MiddleRemap2
)

func (s RemapStrategy) schedule() schedule.Strategy {
	switch s {
	case TailRemap:
		return schedule.Tail
	case MiddleRemap1:
		return schedule.Middle1
	case MiddleRemap2:
		return schedule.Middle2
	default:
		return schedule.Head
	}
}

// ModelParams are the LogGP parameters of the simulated machine, in
// model microseconds (per key for GKey and ShortKey). See
// internal/logp for the formulas.
type ModelParams struct {
	L, O, Gap, GKey, ShortKey float64
}

// Result reports a completed sort.
type Result struct {
	// Algorithm that ran.
	Algorithm Algorithm
	// Keys is the total number of keys sorted.
	Keys int
	// Time is the execution time in microseconds: under the Simulated
	// backend, modelled time (the makespan over all processors' virtual
	// clocks); under Native, measured wall-clock time of the run.
	Time float64
	// Remaps, VolumeSent and MessagesSent are per-processor averages of
	// the three communication metrics of §3.4.
	Remaps       int
	VolumeSent   int
	MessagesSent int
	// ComputeTime, PackTime, TransferTime, UnpackTime break down the
	// per-processor average time by phase (Figures 5.4 and 5.6) —
	// modelled under Simulated, measured under Native (where transfers
	// are zero-copy shared-memory handoffs, so TransferTime is tiny).
	ComputeTime  float64
	PackTime     float64
	TransferTime float64
	UnpackTime   float64
}

// TimePerKey returns the paper's per-key metric: Time / Keys.
func (r Result) TimePerKey() float64 {
	if r.Keys == 0 {
		return 0
	}
	return r.Time / float64(r.Keys)
}

// CommTime returns the communication part of the per-processor time.
func (r Result) CommTime() float64 { return r.PackTime + r.TransferTime + r.UnpackTime }

// Sort sorts keys in place (ascending) on a simulated machine with
// cfg.Processors processors and returns the modelled execution
// statistics. len(keys) must be a multiple of Processors with a
// power-of-two per-processor share (the bitonic network sorts
// power-of-two sizes; the paper assumes the same). It is SortContext
// with a background context.
func Sort[E element.Elem](keys []E, cfg Config) (Result, error) {
	return SortContext(context.Background(), keys, cfg)
}

// SortContext is Sort under a context. Cancellation or deadline expiry
// aborts the run promptly — blocked processors are released rather
// than left hanging at a barrier — and the returned error wraps
// spmd.ErrCanceled or spmd.ErrDeadline; a panicking processor surfaces
// as a *spmd.PanicError instead of a panic. After any failure the
// contents of keys are unspecified.
//
// Each call constructs a fresh execution engine; callers that sort
// repeatedly should build one with NewEngine (or pool them, see
// internal/serve) to amortize the setup.
func SortContext[E element.Elem](ctx context.Context, keys []E, cfg Config) (Result, error) {
	if cfg.Auto {
		resolved, err := resolveAuto[E](cfg, len(keys), true)
		if err != nil {
			return Result{}, err
		}
		cfg = resolved
	}
	e, err := NewEngineOf[E](cfg)
	if err != nil {
		return Result{}, err
	}
	defer e.Close()
	return e.SortContext(ctx, keys)
}

// validateOverrides rejects non-finite or negative Model and Costs
// overrides before they can poison a run: a NaN model parameter makes
// every virtual time NaN, and a negative cost runs clocks backwards —
// both previously surfaced only as absurd Results.
func validateOverrides(cfg Config) error {
	if m := cfg.Model; m != nil {
		for _, f := range []struct {
			name string
			v    float64
		}{{"L", m.L}, {"O", m.O}, {"Gap", m.Gap}, {"GKey", m.GKey}, {"ShortKey", m.ShortKey}} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return fmt.Errorf("parbitonic: Model.%s = %v must be finite and non-negative", f.name, f.v)
			}
		}
	}
	if c := cfg.Costs; c != nil {
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"RadixPass", c.RadixPass}, {"Merge", c.Merge},
			{"CompareExchange", c.CompareExchange}, {"Pack", c.Pack},
			{"Unpack", c.Unpack}, {"CacheAlpha", c.CacheAlpha},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return fmt.Errorf("parbitonic: Costs.%s = %v must be finite and non-negative", f.name, f.v)
			}
		}
		if c.RadixPasses < 0 {
			return fmt.Errorf("parbitonic: Costs.RadixPasses = %d must be non-negative", c.RadixPasses)
		}
		if c.LgCacheKeys < 0 {
			return fmt.Errorf("parbitonic: Costs.LgCacheKeys = %d must be non-negative", c.LgCacheKeys)
		}
	}
	return nil
}

func machineConfig(cfg Config) machine.Config {
	mc := machine.DefaultConfig(cfg.Processors)
	mc.Long = !cfg.ShortMessages
	if cfg.Model != nil {
		mc.Model = logp.Params{
			L: cfg.Model.L, O: cfg.Model.O, Gap: cfg.Model.Gap,
			GKey: cfg.Model.GKey, ShortKey: cfg.Model.ShortKey, P: cfg.Processors,
		}
	}
	if cfg.Costs != nil {
		mc.Costs = *cfg.Costs
	}
	mc.Trace = cfg.Trace
	return mc
}

// SortPadded sorts keys of arbitrary length: the input is padded with
// maximal keys up to the next length divisible into power-of-two
// per-processor shares (PaddedSize), sorted with Sort, and the padding
// stripped. Result statistics refer to the padded run.
func SortPadded[E element.Elem](keys []E, cfg Config) (Result, error) {
	if cfg.Auto {
		resolved, err := resolveAuto[E](cfg, len(keys), false)
		if err != nil {
			return Result{}, err
		}
		cfg = resolved
	}
	e, err := NewEngineOf[E](cfg)
	if err != nil {
		return Result{}, err
	}
	defer e.Close()
	return e.SortPaddedContext(context.Background(), keys)
}

// ---- re-exported bitonic-sequence utilities (Chapter 4 primitives) ----

// IsBitonic reports whether s is a bitonic sequence (Definition 1).
func IsBitonic[E element.Elem](s []E) bool { return bitseq.IsBitonic(s) }

// MinIndexBitonic returns the index of a minimum of the bitonic
// sequence s, in O(log n) time for duplicate-free input (Algorithm 2).
func MinIndexBitonic[E element.Elem](s []E) int { return bitseq.MinIndex(s) }

// SortBitonicSequence sorts the bitonic sequence src into dst in O(n)
// time (Lemma 9). dst and src must have equal length and not overlap.
func SortBitonicSequence[E element.Elem](dst, src []E, ascending bool) {
	bitseq.SortBitonic(dst, src, ascending)
}

// RemapInfo describes one remap of the smart schedule, for inspection.
type RemapInfo struct {
	Stage, Step int    // paper coordinates: stage lgn+K, step S
	Kind        string // "inside", "crossing" or "last"
	StepsAfter  int    // network steps executed locally after the remap
	BitsChanged int    // Lemma 3's N_BitsChanged
	BitPattern  string // 'P'/'L' rendering of the layout (Figure 3.4)
}

// SmartSchedule returns the smart remap schedule for sorting 2^lgN keys
// on 2^lgP processors (Head strategy) — the data behind Figures 3.3
// and 3.4.
func SmartSchedule(lgN, lgP int) []RemapInfo {
	lgn := lgN - lgP
	var out []RemapInfo
	for _, r := range schedule.New(lgN, lgP, schedule.Head) {
		l := *r.Layout
		l.Name = ""
		out = append(out, RemapInfo{
			Stage:       lgn + r.K,
			Step:        r.S,
			Kind:        r.Kind.String(),
			StepsAfter:  r.StepsAfter,
			BitsChanged: r.BitsChanged,
			BitPattern:  l.String(),
		})
	}
	return out
}

// Predict returns the analytic LogP/LogGP communication metrics and
// times for the three bitonic remapping strategies (§3.4) without
// running anything: the (R, V, M) table and the total communication
// time under the given message mode.
type Prediction struct {
	Strategy            string
	Remaps, Volume, Msg int
	CommTime            float64
}

// Predict evaluates the §3.4 analysis for sorting 2^lgN keys on 2^lgP
// processors under Meiko-like parameters (or cfg.Model overrides).
func Predict(lgN, lgP int, longMessages bool, model *ModelParams) []Prediction {
	p := logp.MeikoCS2(1 << uint(lgP))
	if model != nil {
		p = logp.Params{L: model.L, O: model.O, Gap: model.Gap, GKey: model.GKey, ShortKey: model.ShortKey, P: 1 << uint(lgP)}
	}
	n := 1 << uint(lgN-lgP)
	metrics := []logp.Metrics{logp.Blocked(lgP, n), logp.CyclicBlocked(lgP, n), logp.Smart(lgN, lgP)}
	var out []Prediction
	for _, m := range metrics {
		t := m.ShortTime(p)
		if longMessages {
			t = m.LongTime(p)
		}
		out = append(out, Prediction{Strategy: m.Name, Remaps: m.R, Volume: m.V, Msg: m.M, CommTime: t})
	}
	return out
}
