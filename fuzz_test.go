package parbitonic_test

import (
	"encoding/binary"
	"sort"
	"testing"

	"parbitonic"
)

// decodeKeys turns fuzz bytes into a key slice.
func decodeKeys(data []byte) []uint32 {
	keys := make([]uint32, len(data)/4)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return keys
}

// FuzzSortPadded feeds arbitrary byte strings through the public
// padded-sort entry point with varying machine sizes and verifies the
// output is the sorted multiset of the input.
func FuzzSortPadded(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0}, uint8(2))
	f.Add(make([]byte, 64), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, lgP uint8) {
		keys := decodeKeys(data)
		if len(keys) == 0 || len(keys) > 1<<12 {
			t.Skip()
		}
		p := 1 << (lgP % 4)
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if _, err := parbitonic.SortPadded(keys, parbitonic.Config{Processors: p}); err != nil {
			t.Fatalf("SortPadded: %v", err)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("p=%d: wrong key at %d: got %d want %d", p, i, keys[i], want[i])
			}
		}
	})
}

// FuzzMinIndexBitonic builds a bitonic sequence from arbitrary values
// and checks Algorithm 2 returns a true minimum.
func FuzzMinIndexBitonic(f *testing.F) {
	f.Add([]byte{5, 1, 9, 2}, uint8(1), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 7}, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, up, rot uint8) {
		vals := decodeKeys(data)
		if len(vals) == 0 || len(vals) > 4096 {
			t.Skip()
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		u := 1 + int(up)%len(vals)
		seq := make([]uint32, 0, len(vals))
		seq = append(seq, vals[len(vals)-u:]...)
		for i := len(vals) - u - 1; i >= 0; i-- {
			seq = append(seq, vals[i])
		}
		// Rotate.
		r := int(rot) % len(seq)
		seq = append(seq[r:], seq[:r]...)
		if !parbitonic.IsBitonic(seq) {
			t.Fatalf("generator produced non-bitonic input %v", seq)
		}
		got := seq[parbitonic.MinIndexBitonic(seq)]
		if got != vals[0] {
			t.Fatalf("MinIndexBitonic found %d, true min %d in %v", got, vals[0], seq)
		}
	})
}
