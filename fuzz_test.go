package parbitonic_test

import (
	"encoding/binary"
	"sort"
	"testing"

	"parbitonic"
)

// decodeKeys turns fuzz bytes into a key slice.
func decodeKeys(data []byte) []uint32 {
	keys := make([]uint32, len(data)/4)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return keys
}

// FuzzSortPadded feeds arbitrary byte strings through the public
// padded-sort entry point with varying machine sizes and verifies the
// output is the sorted multiset of the input.
func FuzzSortPadded(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0}, uint8(2))
	f.Add(make([]byte, 64), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, lgP uint8) {
		keys := decodeKeys(data)
		if len(keys) == 0 || len(keys) > 1<<12 {
			t.Skip()
		}
		p := 1 << (lgP % 4)
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if _, err := parbitonic.SortPadded(keys, parbitonic.Config{Processors: p}); err != nil {
			t.Fatalf("SortPadded: %v", err)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("p=%d: wrong key at %d: got %d want %d", p, i, keys[i], want[i])
			}
		}
	})
}

// FuzzPayloadPermutation feeds arbitrary key bytes through the padded
// sort as key+payload records, with each record's payload set to its
// input position. The output must be a permutation of the input: keys
// sorted, every payload seen exactly once, and each payload still
// naming a position whose original key equals the record's key — a
// record whose payload was detached from its key fails the last check.
func FuzzPayloadPermutation(f *testing.F) {
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, uint8(2))
	f.Add(make([]byte, 128), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, lgP uint8) {
		n := len(data) / 8
		if n == 0 || n > 1<<12 {
			t.Skip()
		}
		orig := make([]uint64, n)
		recs := make([]parbitonic.KV64, n)
		for i := range recs {
			orig[i] = binary.LittleEndian.Uint64(data[i*8:])
			recs[i] = parbitonic.KV64{K: orig[i], V: uint64(i)}
		}
		p := 1 << (lgP % 4)
		if _, err := parbitonic.SortPadded(recs, parbitonic.Config{Processors: p}); err != nil {
			t.Fatalf("SortPadded: %v", err)
		}
		seen := make([]bool, n)
		for i, r := range recs {
			if i > 0 && recs[i-1].K > r.K {
				t.Fatalf("p=%d: keys out of order at %d: %d > %d", p, i, recs[i-1].K, r.K)
			}
			if r.V >= uint64(n) {
				t.Fatalf("p=%d: record %d has foreign payload %d (n=%d)", p, i, r.V, n)
			}
			if seen[r.V] {
				t.Fatalf("p=%d: payload %d delivered twice", p, r.V)
			}
			seen[r.V] = true
			if orig[r.V] != r.K {
				t.Fatalf("p=%d: record %d: key %d paired with payload %d, which belonged to key %d",
					p, i, r.K, r.V, orig[r.V])
			}
		}
	})
}

// FuzzMinIndexBitonic builds a bitonic sequence from arbitrary values
// and checks Algorithm 2 returns a true minimum.
func FuzzMinIndexBitonic(f *testing.F) {
	f.Add([]byte{5, 1, 9, 2}, uint8(1), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 7}, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, up, rot uint8) {
		vals := decodeKeys(data)
		if len(vals) == 0 || len(vals) > 4096 {
			t.Skip()
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		u := 1 + int(up)%len(vals)
		seq := make([]uint32, 0, len(vals))
		seq = append(seq, vals[len(vals)-u:]...)
		for i := len(vals) - u - 1; i >= 0; i-- {
			seq = append(seq, vals[i])
		}
		// Rotate.
		r := int(rot) % len(seq)
		seq = append(seq[r:], seq[:r]...)
		if !parbitonic.IsBitonic(seq) {
			t.Fatalf("generator produced non-bitonic input %v", seq)
		}
		got := seq[parbitonic.MinIndexBitonic(seq)]
		if got != vals[0] {
			t.Fatalf("MinIndexBitonic found %d, true min %d in %v", got, vals[0], seq)
		}
	})
}
