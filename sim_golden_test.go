package parbitonic_test

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"testing"

	"parbitonic"
	"parbitonic/element"
)

// -update-sim-golden regenerates testdata/sim_golden.json from the
// current implementation. The committed file was generated BEFORE the
// shared-memory fast path landed, so the test proves the simulator's
// output — sorted bytes, model time, communication counters, phase
// breakdown — stayed bit-identical across the refactor.
var updateSimGolden = flag.Bool("update-sim-golden", false, "rewrite testdata/sim_golden.json")

type simGoldenEntry struct {
	Case   string  `json:"case"`
	Sum    string  `json:"sum"` // FNV-64a over the sorted output bytes
	Time   float64 `json:"time"`
	Remaps int     `json:"remaps"`
	Volume int     `json:"volume"`
	Msgs   int     `json:"msgs"`
	// Phase times, rounded to 1e-6 µs to stay exact under JSON.
	Compute  float64 `json:"compute"`
	Pack     float64 `json:"pack"`
	Transfer float64 `json:"transfer"`
	Unpack   float64 `json:"unpack"`
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

func hashElems[E element.Elem](keys []E) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], element.Bits(k))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], element.Aux(k))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func simGoldenWorkload[E element.Elem](n int, seed int64) []E {
	rng := rand.New(rand.NewSource(seed))
	out := make([]E, n)
	for i := range out {
		// Bounded signed values exercise duplicates, negatives (for
		// floats) and distinct payloads (for records) at every width.
		v := rng.Intn(1<<16) - 1<<15
		switch s := any(out).(type) {
		case []uint32:
			s[i] = uint32(v + 1<<15)
		case []uint64:
			s[i] = uint64(v+1<<15) << 7
		case []float32:
			s[i] = float32(v) / 8
		case []float64:
			s[i] = float64(v) / 8
		case []element.KV64:
			s[i] = element.KV64{K: uint64(v + 1<<15), V: uint64(i)}
		}
	}
	return out
}

func runSimGoldenCase[E element.Elem](t *testing.T, name string, total int, cfg parbitonic.Config) simGoldenEntry {
	t.Helper()
	keys := simGoldenWorkload[E](total, 1234)
	res, err := parbitonic.Sort(keys, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return simGoldenEntry{
		Case:     name,
		Sum:      hashElems(keys),
		Time:     round6(res.Time),
		Remaps:   res.Remaps,
		Volume:   res.VolumeSent,
		Msgs:     res.MessagesSent,
		Compute:  round6(res.ComputeTime),
		Pack:     round6(res.PackTime),
		Transfer: round6(res.TransferTime),
		Unpack:   round6(res.UnpackTime),
	}
}

// collectSimGolden runs every golden configuration on the simulator.
// The matrix spans algorithms, compute modes, remap strategies, message
// modes and element types, including the irregular regime (P=8, n=32)
// where the optimized non-FullSort path runs.
func collectSimGolden(t *testing.T) []simGoldenEntry {
	t.Helper()
	var out []simGoldenEntry
	add := func(e simGoldenEntry) { out = append(out, e) }

	base := func(p int) parbitonic.Config {
		return parbitonic.Config{Processors: p}
	}

	// Algorithm sweep at P=4, N=4096, u32.
	for _, alg := range []parbitonic.Algorithm{
		parbitonic.SmartBitonic, parbitonic.CyclicBlockedBitonic,
		parbitonic.BlockedMergeBitonic, parbitonic.SampleSort, parbitonic.RadixSort,
	} {
		cfg := base(4)
		cfg.Algorithm = alg
		add(runSimGoldenCase[uint32](t, "alg/"+alg.String(), 4096, cfg))
	}

	// Smart variants: fused, fullsort regime, simulated steps, short messages.
	{
		cfg := base(4)
		cfg.FusePackUnpack = true
		add(runSimGoldenCase[uint32](t, "smart/fused", 4096, cfg))
		cfg = base(4)
		cfg.SimulateSteps = true
		add(runSimGoldenCase[uint32](t, "smart/simulated", 4096, cfg))
		cfg = base(4)
		cfg.ShortMessages = true
		add(runSimGoldenCase[uint32](t, "smart/short", 4096, cfg))
		// Irregular regime: lgP(lgP+1)/2 = 6 > lg n = 5 keeps the fused
		// config on the optimized (non-FullSort) path.
		cfg = base(8)
		cfg.FusePackUnpack = true
		add(runSimGoldenCase[uint32](t, "smart/fused-irregular", 8*32, cfg))
	}

	// Remap strategies (simulated compute implied for non-Head).
	for _, s := range []parbitonic.RemapStrategy{
		parbitonic.TailRemap, parbitonic.MiddleRemap1, parbitonic.MiddleRemap2,
	} {
		cfg := base(4)
		cfg.Strategy = s
		add(runSimGoldenCase[uint32](t, fmt.Sprintf("strategy/%d", s), 4096, cfg))
	}

	// Element types at P=4, N=2048, smart default.
	add(runSimGoldenCase[uint32](t, "elem/u32", 2048, base(4)))
	add(runSimGoldenCase[uint64](t, "elem/u64", 2048, base(4)))
	add(runSimGoldenCase[float32](t, "elem/f32", 2048, base(4)))
	add(runSimGoldenCase[float64](t, "elem/f64", 2048, base(4)))
	add(runSimGoldenCase[element.KV64](t, "elem/kv64", 2048, base(4)))

	// P=1 degenerate case.
	add(runSimGoldenCase[uint32](t, "p1", 1024, base(1)))
	return out
}

// TestSimulatedGolden proves the simulated backend's observable output
// is bit-identical to the committed pre-fast-path goldens: the shared-
// memory remap fast path and kernel overhaul must not change a single
// byte of simulated output nor any model-time digit.
func TestSimulatedGolden(t *testing.T) {
	got := collectSimGolden(t)
	const path = "testdata/sim_golden.json"
	if *updateSimGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-sim-golden to create): %v", err)
	}
	var want []simGoldenEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden entry count changed: have %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("simulated output drifted for %s:\n got %+v\nwant %+v", want[i].Case, got[i], want[i])
		}
	}
}
