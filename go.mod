module parbitonic

go 1.22
