package parbitonic_test

// Public-API failure-semantics tests: cancellation and deadlines through
// SortContext, Config.Verify across every algorithm and backend,
// override validation, and the no-goroutine-leak guarantee for canceled
// native sorts.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"parbitonic"
	"parbitonic/internal/machine"
	"parbitonic/internal/spmd"
	"parbitonic/internal/workload"
)

func failsafeKeys(p, n int) []uint32 {
	return workload.Keys(workload.Uniform31, p*n, 42)
}

func TestSortContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	keys := failsafeKeys(4, 64)
	_, err := parbitonic.SortContext(ctx, keys, parbitonic.Config{Processors: 4})
	if !errors.Is(err, spmd.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping spmd.ErrCanceled and context.Canceled", err)
	}
}

func TestSortContextDeadline(t *testing.T) {
	// A large simulated sort canceled almost immediately: the run must
	// abort with a typed error well before it could finish.
	keys := failsafeKeys(16, 1<<14)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	_, err := parbitonic.SortContext(ctx, keys, parbitonic.Config{Processors: 16})
	if !errors.Is(err, spmd.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapping spmd.ErrDeadline and context.DeadlineExceeded", err)
	}
}

// TestCanceledNativeSortLeaksNoGoroutines is the acceptance assertion
// for the native backend: after a canceled sort returns, every worker
// goroutine has exited.
func TestCanceledNativeSortLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		keys := failsafeKeys(8, 1<<15)
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := parbitonic.SortContext(ctx, keys, parbitonic.Config{
				Processors: 8, Backend: parbitonic.Native,
			})
			errc <- err
		}()
		time.Sleep(time.Duration(i) * 100 * time.Microsecond) // vary the abort point
		cancel()
		select {
		case err := <-errc:
			// A fast run may legitimately win the race and finish clean.
			if err != nil && !errors.Is(err, spmd.ErrCanceled) {
				t.Fatalf("iteration %d: err = %v, want nil or wrapping spmd.ErrCanceled", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("canceled native sort did not return within 2s")
		}
	}
	// Workers are joined before RunContext returns, so the count should
	// settle back promptly; allow the runtime a few retries to idle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d after canceled native sorts", runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

func TestVerifyPassesEverywhere(t *testing.T) {
	algos := []parbitonic.Algorithm{
		parbitonic.SmartBitonic, parbitonic.CyclicBlockedBitonic,
		parbitonic.BlockedMergeBitonic, parbitonic.SampleSort, parbitonic.RadixSort,
	}
	backends := []parbitonic.Backend{parbitonic.Simulated, parbitonic.Native}
	for _, alg := range algos {
		for _, b := range backends {
			t.Run(alg.String()+"/"+b.String(), func(t *testing.T) {
				keys := failsafeKeys(4, 256)
				res, err := parbitonic.Sort(keys, parbitonic.Config{
					Processors: 4, Algorithm: alg, Backend: b, Verify: true,
				})
				if err != nil {
					t.Fatalf("verified sort failed: %v", err)
				}
				if res.Keys != len(keys) {
					t.Fatalf("res.Keys = %d, want %d", res.Keys, len(keys))
				}
				for i := 1; i < len(keys); i++ {
					if keys[i-1] > keys[i] {
						t.Fatalf("output not sorted at %d", i)
					}
				}
			})
		}
	}
}

func TestOverrideValidation(t *testing.T) {
	keys := failsafeKeys(2, 4)
	cases := []struct {
		name string
		cfg  parbitonic.Config
		want string
	}{
		{"NaN model L", parbitonic.Config{Processors: 2, Model: &parbitonic.ModelParams{L: math.NaN()}}, "Model.L"},
		{"negative gap", parbitonic.Config{Processors: 2, Model: &parbitonic.ModelParams{Gap: -1}}, "Model.Gap"},
		{"Inf GKey", parbitonic.Config{Processors: 2, Model: &parbitonic.ModelParams{GKey: math.Inf(1)}}, "Model.GKey"},
		{"negative merge cost", parbitonic.Config{Processors: 2, Costs: &machine.CostModel{Merge: -2, RadixPasses: 1}}, "Costs.Merge"},
		{"NaN pack cost", parbitonic.Config{Processors: 2, Costs: &machine.CostModel{Pack: math.NaN(), RadixPasses: 1}}, "Costs.Pack"},
		{"negative radix passes", parbitonic.Config{Processors: 2, Costs: &machine.CostModel{RadixPasses: -1}}, "Costs.RadixPasses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parbitonic.Sort(append([]uint32(nil), keys...), tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %s", err, tc.want)
			}
		})
	}
}

// TestVerifyCatchesCorruption feeds the verifier a genuinely corrupted
// run through the public API surface it guards: a *VerifyError must
// come back typed and named. (The corruption path itself is exercised
// end to end in internal/fault.)
func TestVerifyErrorType(t *testing.T) {
	var verr *parbitonic.VerifyError
	err := error(&parbitonic.VerifyError{Invariant: "multiset", Proc: -1, Detail: "test"})
	if !errors.As(err, &verr) || verr.Invariant != "multiset" {
		t.Fatalf("VerifyError does not round-trip through errors.As: %v", err)
	}
}
