// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (DESIGN.md §4 maps them). Each benchmark runs
// the experiment's workload on the simulated machine and reports, next
// to the real wall-clock ns/op, the *model* metrics the paper's tables
// contain as custom benchmark metrics (model-us/key etc.). Run with
//
//	go test -bench=. -benchmem
//
// The full tables are printed by `go run ./cmd/experiments`.
package parbitonic_test

import (
	"fmt"
	"testing"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/experiments"
	"parbitonic/internal/schedule"
	"parbitonic/internal/workload"
)

// benchN is the per-processor key count used by the benchmarks: 16K
// keys keeps a full sweep fast while staying in the asymptotic regime.
const benchN = 1 << 14

func runConfig(b *testing.B, p, n int, cfg parbitonic.Config) parbitonic.Result {
	b.Helper()
	cfg.Processors = p
	base := workload.Keys(workload.Uniform31, p*n, 1996)
	keys := make([]uint32, len(base))
	var res parbitonic.Result
	var err error
	b.SetBytes(int64(len(base) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		res, err = parbitonic.Sort(keys, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.TimePerKey()*1000, "model-ns/key")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(base)), "ns/key")
	return res
}

// BenchmarkTable51_PerKey: execution time per key for the three bitonic
// implementations on 32 processors (Table 5.1 / Figure 5.2).
func BenchmarkTable51_PerKey(b *testing.B) {
	for _, alg := range []parbitonic.Algorithm{
		parbitonic.BlockedMergeBitonic, parbitonic.CyclicBlockedBitonic, parbitonic.SmartBitonic,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			runConfig(b, 32, benchN, parbitonic.Config{Algorithm: alg})
		})
	}
	// The production configuration: fully fused local computation.
	b.Run("smart-bitonic-fullsort", func(b *testing.B) {
		runConfig(b, 32, benchN, parbitonic.Config{Algorithm: parbitonic.SmartBitonic, FusePackUnpack: true})
	})
}

// BenchmarkTable52_Total: total execution time for the same three
// implementations (Table 5.2 / Figure 5.1); the model total appears as
// model-us.
func BenchmarkTable52_Total(b *testing.B) {
	for _, alg := range []parbitonic.Algorithm{
		parbitonic.BlockedMergeBitonic, parbitonic.CyclicBlockedBitonic, parbitonic.SmartBitonic,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			res := runConfig(b, 32, benchN, parbitonic.Config{Algorithm: alg})
			b.ReportMetric(res.Time, "model-us-total")
		})
	}
}

// BenchmarkFig53_Speedup: sorting a fixed total (1M scaled to 256K) on
// 2..32 processors (Figure 5.3).
func BenchmarkFig53_Speedup(b *testing.B) {
	const total = 1 << 18
	for _, p := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			res := runConfig(b, p, total/p, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
			b.ReportMetric(res.Time, "model-us-total")
		})
	}
}

// BenchmarkFig54_Breakdown: communication vs computation share of the
// smart sort on 16 processors (Figure 5.4).
func BenchmarkFig54_Breakdown(b *testing.B) {
	res := runConfig(b, 16, benchN, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
	total := res.ComputeTime + res.CommTime()
	b.ReportMetric(res.ComputeTime/total*100, "compute-%")
	b.ReportMetric(res.CommTime()/total*100, "comm-%")
}

// BenchmarkTable53_ShortLong: short- vs long-message communication time
// on 16 processors (Table 5.3 / Figure 5.5).
func BenchmarkTable53_ShortLong(b *testing.B) {
	for _, mode := range []struct {
		name  string
		short bool
	}{{"long", false}, {"short", true}} {
		b.Run(mode.name, func(b *testing.B) {
			res := runConfig(b, 16, benchN, parbitonic.Config{Algorithm: parbitonic.SmartBitonic, ShortMessages: mode.short})
			b.ReportMetric(res.CommTime()/float64(16*benchN)*1000, "model-comm-ns/key")
		})
	}
}

// BenchmarkTable54_PackBreakdown: pack/transfer/unpack composition of
// the long-message communication (Table 5.4 / Figure 5.6).
func BenchmarkTable54_PackBreakdown(b *testing.B) {
	res := runConfig(b, 16, benchN, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
	n := float64(16 * benchN)
	b.ReportMetric(res.PackTime/n*1000, "pack-ns/key")
	b.ReportMetric(res.TransferTime/n*1000, "transfer-ns/key")
	b.ReportMetric(res.UnpackTime/n*1000, "unpack-ns/key")
}

// BenchmarkFig57_Compare16 and BenchmarkFig58_Compare32: bitonic vs
// radix vs sample sort (Figures 5.7 and 5.8).
func BenchmarkFig57_Compare16(b *testing.B) { benchCompare(b, 16) }
func BenchmarkFig58_Compare32(b *testing.B) { benchCompare(b, 32) }

func benchCompare(b *testing.B, p int) {
	for _, alg := range []parbitonic.Algorithm{
		parbitonic.SmartBitonic, parbitonic.RadixSort, parbitonic.SampleSort,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			cfg := parbitonic.Config{Algorithm: alg, FusePackUnpack: alg == parbitonic.SmartBitonic}
			runConfig(b, p, benchN, cfg)
		})
	}
}

// runConfigOf is runConfig for any element type: the same uniform key
// stream carried into E's key space, so ns/key is comparable across
// element types (and, for uint32, directly against runConfig — the
// monomorphized u32 path must stay within noise of the pre-generics
// numbers; EXPERIMENTS.md records the comparison).
func runConfigOf[E element.Elem](b *testing.B, p, n int, cfg parbitonic.Config) parbitonic.Result {
	b.Helper()
	cfg.Processors = p
	base := workload.Elems[E](workload.Uniform31, p*n, 1996)
	keys := make([]E, len(base))
	var res parbitonic.Result
	var err error
	b.SetBytes(int64(len(base) * element.Width[E]()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		res, err = parbitonic.Sort(keys, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.TimePerKey()*1000, "model-ns/key")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(base)), "ns/key")
	return res
}

// BenchmarkElemTypes: the smart bitonic sort across the non-u32
// element types on both backends (the u32 baselines are the Table 5.1
// benchmarks above). Simulated variants report width-scaled model
// time; Native variants report real wall-clock ns/key and allocations,
// which is where a slow generic kernel would show up.
func BenchmarkElemTypes(b *testing.B) {
	const p = 16
	for _, backend := range []parbitonic.Backend{parbitonic.Simulated, parbitonic.Native} {
		name := "simulated"
		if backend == parbitonic.Native {
			name = "native"
		}
		cfg := parbitonic.Config{Algorithm: parbitonic.SmartBitonic, Backend: backend}
		b.Run(name+"/u64", func(b *testing.B) { runConfigOf[uint64](b, p, benchN, cfg) })
		b.Run(name+"/f64", func(b *testing.B) { runConfigOf[float64](b, p, benchN, cfg) })
		b.Run(name+"/kv64", func(b *testing.B) { runConfigOf[parbitonic.KV64](b, p, benchN, cfg) })
	}
}

// BenchmarkAnalysis_Volume: the §3.2.1 analytic volume/remap counters
// (pure computation, no simulation).
func BenchmarkAnalysis_Volume(b *testing.B) {
	var v int
	for i := 0; i < b.N; i++ {
		sched := schedule.New(24, 5, schedule.Head)
		v = schedule.Volume(sched, 1<<19)
	}
	b.ReportMetric(float64(v), "keys/proc")
}

// BenchmarkAnalysis_LogGP: the §3.4 strategy decision procedure.
func BenchmarkAnalysis_LogGP(b *testing.B) {
	var best parbitonic.Prediction
	for i := 0; i < b.N; i++ {
		preds := parbitonic.Predict(24, 5, true, nil)
		best = preds[0]
		for _, p := range preds {
			if p.CommTime < best.CommTime {
				best = p
			}
		}
	}
	b.ReportMetric(best.CommTime, "model-us-comm")
}

// BenchmarkAblation_Shift: Lemma 5 remap-shift strategies (volume per
// strategy as metrics).
func BenchmarkAblation_Shift(b *testing.B) {
	for _, s := range []schedule.Strategy{schedule.Head, schedule.Tail, schedule.Middle1, schedule.Middle2} {
		b.Run(s.String(), func(b *testing.B) {
			var v int
			for i := 0; i < b.N; i++ {
				v = schedule.Volume(schedule.New(20, 4, s), 1<<16)
			}
			b.ReportMetric(float64(v), "keys/proc")
		})
	}
}

// BenchmarkAblation_Compute: Chapter 4's optimized local computation vs
// step-by-step simulation.
func BenchmarkAblation_Compute(b *testing.B) {
	for _, mode := range []struct {
		name string
		sim  bool
	}{{"optimized", false}, {"simulated", true}} {
		b.Run(mode.name, func(b *testing.B) {
			res := runConfig(b, 16, benchN, parbitonic.Config{Algorithm: parbitonic.SmartBitonic, SimulateSteps: mode.sim})
			b.ReportMetric(res.ComputeTime/float64(16*benchN)*1000, "model-compute-ns/key")
		})
	}
}

// BenchmarkExperimentSuite runs the entire scaled experiment suite once
// per iteration — the end-to-end reproduction cost.
func BenchmarkExperimentSuite(b *testing.B) {
	cfg := experiments.Config{Seed: 1996, Scale: 9}
	for i := 0; i < b.N; i++ {
		if tabs := experiments.All(cfg); len(tabs) != 14 {
			b.Fatalf("expected 14 tables, got %d", len(tabs))
		}
	}
}
