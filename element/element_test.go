package element

import (
	"math"
	"sort"
	"testing"
)

// checkImageOrder verifies that Bits order agrees with Less order and
// that FromBits(Bits, Aux) round-trips, over a fixed sample of values.
func checkImageOrder[E Elem](t *testing.T, vals []E) {
	t.Helper()
	for _, a := range vals {
		if got := FromBits[E](Bits(a), Aux(a)); got != a {
			t.Fatalf("FromBits(Bits(%v)) = %v", a, got)
		}
		if Less(a, Max[E]()) != (a != Max[E]()) {
			t.Fatalf("Max ordering wrong for %v", a)
		}
		for _, b := range vals {
			if Less(a, b) != (Bits(a) < Bits(b)) {
				t.Fatalf("image order disagrees with Less for %v, %v", a, b)
			}
		}
	}
}

func TestImageOrderAndRoundTrip(t *testing.T) {
	checkImageOrder(t, []uint32{0, 1, 7, 1 << 31, ^uint32(0) - 1, ^uint32(0)})
	checkImageOrder(t, []uint64{0, 1, 1 << 40, ^uint64(0)})
	checkImageOrder(t, []float32{float32(math.Inf(-1)), -2.5, -0, 0, 1.5, float32(math.Inf(1))})
	checkImageOrder(t, []float64{math.Inf(-1), -1e300, -0.25, 0, 3.75, math.Inf(1)})
	checkImageOrder(t, []KV64{{K: 0, V: 9}, {K: 1, V: 8}, {K: 1 << 60, V: 7}, {K: ^uint64(0), V: ^uint64(0)}})
}

func TestNegativeZeroImages(t *testing.T) {
	// -0.0 and +0.0 compare equal under <, and their images must be
	// adjacent so no third value sorts between them.
	nz, pz := Bits(float64(math.Copysign(0, -1))), Bits(float64(0))
	if nz+1 != pz {
		t.Fatalf("float64 zero images not adjacent: %#x, %#x", nz, pz)
	}
}

func TestFloatImageIsSortable(t *testing.T) {
	vals := []float64{3, -1, math.Inf(1), -0.5, 0, math.Inf(-1), 2.25}
	imgs := make([]uint64, len(vals))
	for i, v := range vals {
		imgs[i] = Bits(v)
	}
	sort.Slice(imgs, func(i, j int) bool { return imgs[i] < imgs[j] })
	sort.Float64s(vals)
	for i := range vals {
		if got := FromBits[float64](imgs[i], 0); got != vals[i] {
			t.Fatalf("image sort diverges at %d: %v vs %v", i, got, vals[i])
		}
	}
}

func TestWidthWordsKeyBits(t *testing.T) {
	if Width[uint32]() != 4 || Width[float64]() != 8 || Width[KV64]() != 16 {
		t.Fatal("Width wrong")
	}
	if Words[uint32]() != 1 || Words[uint64]() != 2 || Words[KV64]() != 4 {
		t.Fatal("Words wrong")
	}
	if KeyBits[float32]() != 32 || KeyBits[KV64]() != 64 {
		t.Fatal("KeyBits wrong")
	}
	for _, ty := range Types() {
		if got, err := ParseType(ty.String()); err != nil || got != ty {
			t.Fatalf("ParseType(%v) = %v, %v", ty, got, err)
		}
	}
	if TypeOf[uint32]() != TU32 || TypeOf[KV64]() != TKV64 || TypeOf[float64]() != TF64 {
		t.Fatal("TypeOf wrong")
	}
	if TU32.Width() != 4 || TKV64.Width() != 16 || TU64.KeyBits() != 64 {
		t.Fatal("Type accessors wrong")
	}
}

func TestCastRoundTrip(t *testing.T) {
	f := []float32{1.5, -2.25, 0}
	u := Cast[uint32](f)
	if len(u) != len(f) {
		t.Fatal("Cast length")
	}
	u[0] = math.Float32bits(8.5)
	if f[0] != 8.5 {
		t.Fatal("Cast does not alias backing array")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Cast between unequal widths did not panic")
		}
	}()
	_ = Cast[uint64](f)
}

func TestWireRoundTrip(t *testing.T) {
	b := make([]byte, 16)
	Put(b, KV64{K: 0x0102030405060708, V: 0x1112131415161718})
	if b[0] != 0x08 || b[8] != 0x18 {
		t.Fatal("Put not little-endian key-then-payload")
	}
	if got := Get[KV64](b); got != (KV64{K: 0x0102030405060708, V: 0x1112131415161718}) {
		t.Fatalf("Get = %v", got)
	}
	Put(b, float64(-3.75))
	if got := Get[float64](b); got != -3.75 {
		t.Fatalf("Get float64 = %v", got)
	}
	Put(b, uint32(0xdeadbeef))
	if got := Get[uint32](b); got != 0xdeadbeef {
		t.Fatalf("Get uint32 = %#x", got)
	}
}

func TestIsNaN(t *testing.T) {
	if !IsNaN(float32(math.NaN())) || !IsNaN(math.NaN()) {
		t.Fatal("NaN not detected")
	}
	if IsNaN(uint32(7)) || IsNaN(KV64{}) || IsNaN(1.5) {
		t.Fatal("false NaN")
	}
}
