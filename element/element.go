// Package element defines the element layer of the sort stack: the
// closed set of fixed-width element types every layer — leaf kernels,
// the SPMD data plane, the public API, and the sort-server wire
// protocol — is parameterized over.
//
// The layer deliberately supports a closed union rather than an open
// cmp.Ordered-style constraint, for two reasons that matter in the hot
// paths:
//
//   - Exactness makes unsafe reinterpretation sound. Because Elem
//     admits exactly five types (no ~ approximation), a generic
//     function instantiated on E knows E's memory layout completely,
//     so Cast can reinterpret an []E as its bit-image slice for radix
//     passes and wire encoding without reflection.
//   - Kernels dispatch once per call, not once per element. Hot loops
//     (compare-exchange, radix scatter, run merging) switch on the
//     element kind at function entry and run a monomorphic body using
//     native < on the concrete type; the per-element cost of a
//     method-bearing constraint (a dictionary call per comparison)
//     measured ~45% on the paper's compare-split kernels.
//
// Ordering is the natural < for scalars and key order for KV64
// records; floats order by native comparison, with NaN excluded at
// the API boundary (see IsNaN). Every element has a 64-bit order
// image (Bits) whose unsigned ordering agrees with element ordering,
// which gives radix kernels their digits and the fault injector a
// type-independent way to flip a key's top bit.
package element

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// KV64 is the key+payload record element: a 64-bit sort key and a
// 64-bit payload that rides untouched alongside it through every
// pack, transfer, and unpack. Records order by K alone; V never
// influences placement, so records with equal keys may appear in any
// order (the sort is not stable).
type KV64 struct {
	K uint64 // sort key
	V uint64 // opaque payload, preserved but never compared
}

// Elem is the closed set of element types the stack sorts. The union
// is exact (no ~ terms) on purpose: soundness of Cast and the
// completeness of every kind switch in this package depend on an
// instantiation being one of precisely these five types.
type Elem interface {
	uint32 | uint64 | float32 | float64 | KV64
}

// Ord is the scalar subset of Elem: the four types on which native
// <, <=, and == are defined. Hot kernels that dispatch by kind use
// one generic body constrained by Ord for all scalar instantiations
// and a separate concrete body for KV64.
type Ord interface {
	uint32 | uint64 | float32 | float64
}

// Less reports whether a orders before b: native < for scalars, key
// order for KV64. This is the generic cold-path comparison; hot
// kernels dispatch by kind at entry instead and use < directly.
func Less[E Elem](a, b E) bool {
	switch x := any(a).(type) {
	case uint32:
		return x < any(b).(uint32)
	case uint64:
		return x < any(b).(uint64)
	case float32:
		return x < any(b).(float32)
	case float64:
		return x < any(b).(float64)
	case KV64:
		return x.K < any(b).(KV64).K
	}
	panic("element: impossible kind")
}

// Bits returns e's 64-bit order image: an unsigned integer whose <
// agrees with element ordering. Integers are their own image (zero-
// extended), floats use the standard sign-flip transform (flip all
// bits of negatives, set the top bit of non-negatives), and KV64
// images as its key. Only the low KeyBits bits are meaningful; the
// rest are zero.
func Bits[E Elem](e E) uint64 {
	switch x := any(e).(type) {
	case uint32:
		return uint64(x)
	case uint64:
		return x
	case float32:
		return uint64(flip32(math.Float32bits(x)))
	case float64:
		return flip64(math.Float64bits(x))
	case KV64:
		return x.K
	}
	panic("element: impossible kind")
}

// Aux returns the part of e that is not the order image: the payload
// for KV64, zero for every scalar. Bits and Aux together determine an
// element exactly; FromBits is the inverse.
func Aux[E Elem](e E) uint64 {
	if x, ok := any(e).(KV64); ok {
		return x.V
	}
	return 0
}

// FromBits reconstructs an element from its order image and aux word,
// inverting Bits and Aux. Scalars ignore aux and truncate bits to
// their key width — so integer arithmetic performed on images (as the
// sum collectives do) folds back modulo 2^KeyBits, exactly matching
// native unsigned arithmetic on the element type.
func FromBits[E Elem](bits, aux uint64) E {
	var e E
	switch any(e).(type) {
	case uint32:
		return any(uint32(bits)).(E)
	case uint64:
		return any(bits).(E)
	case float32:
		return any(math.Float32frombits(unflip32(uint32(bits)))).(E)
	case float64:
		return any(math.Float64frombits(unflip64(bits))).(E)
	case KV64:
		return any(KV64{K: bits, V: aux}).(E)
	}
	panic("element: impossible kind")
}

// Max returns the maximum element of E: the padding sentinel every
// layer pads with. No valid element orders after it (NaN is excluded
// by the API boundary), so padding always sorts to the very end.
func Max[E Elem]() E {
	var e E
	switch any(e).(type) {
	case uint32:
		return any(^uint32(0)).(E)
	case uint64:
		return any(^uint64(0)).(E)
	case float32:
		return any(float32(math.Inf(1))).(E)
	case float64:
		return any(math.Inf(1)).(E)
	case KV64:
		return any(KV64{K: ^uint64(0), V: ^uint64(0)}).(E)
	}
	panic("element: impossible kind")
}

// IsNaN reports whether e is a float NaN — the one value the ordering
// contract cannot admit (it is unordered under <, which would break
// the bitonic invariants silently). The public API rejects NaN inputs
// before staging; every layer below assumes none remain.
func IsNaN[E Elem](e E) bool {
	switch x := any(e).(type) {
	case float32:
		return x != x
	case float64:
		return x != x
	}
	return false
}

// Width returns E's size in bytes (4, 8, or 16): the unit the LogGP
// charger scales per-key costs by and the stride of the wire format.
func Width[E Elem]() int {
	return int(unsafe.Sizeof(*new(E)))
}

// Words returns E's size in 32-bit words — the charger's element-width
// factor, 1 for uint32 so the simulated paper tables are unchanged.
func Words[E Elem]() int {
	return Width[E]() / 4
}

// KeyBits returns the number of significant bits in E's order image:
// 32 for uint32 and float32, 64 otherwise. Radix kernels derive their
// pass count from it; the fault injector flips bit KeyBits-1.
func KeyBits[E Elem]() int {
	switch any(*new(E)).(type) {
	case uint32, float32:
		return 32
	}
	return 64
}

// Cast reinterprets a slice of one fixed-width type as another of the
// same size, sharing the backing array (len == cap == len(s)). It is
// how kind-dispatched kernels view an []E as the concrete type they
// matched — sound because Elem is an exact union — and how float radix
// passes view keys as their integer bit patterns in place. T and E
// must have equal sizes; Cast panics otherwise.
func Cast[T any, E any](s []E) []T {
	if unsafe.Sizeof(*new(T)) != unsafe.Sizeof(*new(E)) {
		panic(fmt.Sprintf("element: Cast between unequal widths (%d vs %d bytes)",
			unsafe.Sizeof(*new(T)), unsafe.Sizeof(*new(E))))
	}
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&s[0])), len(s))
}

// flip32 maps float32 bit patterns to their order image: flipping all
// bits of negatives and the sign bit of non-negatives makes unsigned
// image order agree with float order (with -0.0 imaging just below
// +0.0).
func flip32(b uint32) uint32 {
	if b&(1<<31) != 0 {
		return ^b
	}
	return b | 1<<31
}

// unflip32 inverts flip32.
func unflip32(u uint32) uint32 {
	if u&(1<<31) != 0 {
		return u &^ (1 << 31)
	}
	return ^u
}

// flip64 is flip32 for float64 bit patterns.
func flip64(b uint64) uint64 {
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// unflip64 inverts flip64.
func unflip64(u uint64) uint64 {
	if u&(1<<63) != 0 {
		return u &^ (1 << 63)
	}
	return ^u
}

// Type names an element type at runtime — on command lines, in pool
// keys, and as the wire byte of the sort-server's versioned binary
// frame (the constant values ARE the protocol encoding; do not
// reorder).
type Type uint8

const (
	// TU32 is uint32: the paper's native 32-bit key.
	TU32 Type = iota
	// TU64 is uint64.
	TU64
	// TF32 is float32.
	TF32
	// TF64 is float64.
	TF64
	// TKV64 is the KV64 key+payload record.
	TKV64
)

// TypeOf returns the Type naming the instantiation E.
func TypeOf[E Elem]() Type {
	switch any(*new(E)).(type) {
	case uint32:
		return TU32
	case uint64:
		return TU64
	case float32:
		return TF32
	case float64:
		return TF64
	}
	return TKV64
}

// String returns the type's canonical flag spelling (u32, u64, f32,
// f64, kv64).
func (t Type) String() string {
	switch t {
	case TU32:
		return "u32"
	case TU64:
		return "u64"
	case TF32:
		return "f32"
	case TF64:
		return "f64"
	case TKV64:
		return "kv64"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType parses a flag spelling produced by String.
func ParseType(s string) (Type, error) {
	for _, t := range Types() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("element: unknown type %q (want u32, u64, f32, f64 or kv64)", s)
}

// Types lists every element type, for sweep-style tests and build
// matrices.
func Types() []Type {
	return []Type{TU32, TU64, TF32, TF64, TKV64}
}

// Width returns the type's element size in bytes, matching Width[E]
// for the corresponding instantiation.
func (t Type) Width() int {
	switch t {
	case TU32, TF32:
		return 4
	case TU64, TF64:
		return 8
	case TKV64:
		return 16
	}
	return 0
}

// KeyBits returns the significant order-image bits of the type,
// matching KeyBits[E] for the corresponding instantiation.
func (t Type) KeyBits() int {
	switch t {
	case TU32, TF32:
		return 32
	}
	return 64
}

// Put writes e into b in the wire format: little-endian, Width bytes,
// with KV64 laid out key first then payload. b must have at least
// Width bytes.
func Put[E Elem](b []byte, e E) {
	switch x := any(e).(type) {
	case uint32:
		binary.LittleEndian.PutUint32(b, x)
	case uint64:
		binary.LittleEndian.PutUint64(b, x)
	case float32:
		binary.LittleEndian.PutUint32(b, math.Float32bits(x))
	case float64:
		binary.LittleEndian.PutUint64(b, math.Float64bits(x))
	case KV64:
		binary.LittleEndian.PutUint64(b, x.K)
		binary.LittleEndian.PutUint64(b[8:], x.V)
	}
}

// Get reads an element from b, inverting Put.
func Get[E Elem](b []byte) E {
	var e E
	switch any(e).(type) {
	case uint32:
		return any(binary.LittleEndian.Uint32(b)).(E)
	case uint64:
		return any(binary.LittleEndian.Uint64(b)).(E)
	case float32:
		return any(math.Float32frombits(binary.LittleEndian.Uint32(b))).(E)
	case float64:
		return any(math.Float64frombits(binary.LittleEndian.Uint64(b))).(E)
	case KV64:
		return any(KV64{
			K: binary.LittleEndian.Uint64(b),
			V: binary.LittleEndian.Uint64(b[8:]),
		}).(E)
	}
	panic("element: impossible kind")
}
