// The race runtime instruments with allocations of its own, so the
// allocator-accounting assertions only mean something unraced.
//go:build !race

package parbitonic_test

import (
	"testing"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/localsort"
	"parbitonic/internal/workload"
	"parbitonic/internal/workpool"
)

// TestNativeSortZeroAllocs pins the end-to-end zero-allocation promise
// of the shared-memory fast path: a reused native engine sorts in
// steady state without a single heap allocation — no goroutine spawns
// (the engine keeps persistent workers), no message-buffer churn (the
// per-processor free lists circulate every array), no table rebuilds
// (the compiled body, routing scratch and emission closures persist).
// Covered at P=1 (the in-place local path) and P=4 (staging, FullSort
// merges and the exchange board). The kernel pool is pinned to one
// lane so the assertion means the same thing on any host; the
// parallel tile paths draw per-tile scratch by design and are covered
// in the localsort package tests.
func TestNativeSortZeroAllocs(t *testing.T) {
	seq := workpool.New(1)
	defer seq.Close()
	localsort.SetPool(seq)
	defer localsort.SetPool(nil)

	run := func(t *testing.T, p int, f func() error) {
		t.Helper()
		for i := 0; i < 2; i++ { // warm the free lists and spawn workers
			if err := f(); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(10, func() { f() }); avg != 0 {
			t.Errorf("P=%d: %.1f allocs/op in steady state, want 0", p, avg)
		}
	}

	for _, p := range []int{1, 4} {
		e, err := parbitonic.NewEngineOf[uint32](parbitonic.Config{
			Processors: p, Backend: parbitonic.Native,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		keys := workload.Elems[uint32](workload.FullRange, 1<<14, 5)
		run(t, p, func() error { _, err := e.Sort(keys); return err })
	}

	// The record path moves twice the bytes through the same machinery.
	ekv, err := parbitonic.NewEngineOf[element.KV64](parbitonic.Config{
		Processors: 4, Backend: parbitonic.Native,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ekv.Close()
	recs := workload.Elems[element.KV64](workload.FullRange, 1<<14, 9)
	run(t, 4, func() error { _, err := ekv.Sort(recs); return err })
}
