package parbitonic

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"parbitonic/internal/obs"
	"parbitonic/internal/schedule"
)

func randomKeys(t testing.TB, n int) []uint32 {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	return keys
}

// The simulator must match the §3.4 closed forms exactly: the measured
// remap count is R_smart = ceil(lgP + lgP(lgP+1)/(2 lgn)), and volume,
// messages and communication time drift by at most floating-point
// noise.
func TestSortReportSimulatedExact(t *testing.T) {
	const lgN, lgP = 14, 3
	keys := randomKeys(t, 1<<lgN)
	var rep SortReport
	_, err := Sort(keys, Config{
		Processors: 1 << lgP,
		Observe:    func(r SortReport) { rep = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quantities) == 0 {
		t.Fatalf("no quantities in report: %v", rep)
	}
	want := schedule.NumRemaps(lgN, lgP)
	byName := map[string]DriftQuantity{}
	for _, q := range rep.Quantities {
		byName[q.Name] = q
	}
	if r := byName["remaps"]; int(r.Measured) != want || int(r.Predicted) != want {
		t.Errorf("remaps measured=%v predicted=%v, want exactly %d", r.Measured, r.Predicted, want)
	}
	for _, name := range []string{"remaps", "volume", "messages"} {
		if d := byName[name].Drift(); d != 1 {
			t.Errorf("%s drift = %v, want exactly 1", name, d)
		}
	}
	ct, ok := byName["comm-time"]
	if !ok {
		t.Fatal("simulated report missing comm-time")
	}
	if dev := math.Abs(ct.Drift() - 1); dev > 1e-9 {
		t.Errorf("comm-time drift = %v, deviation %v exceeds fp tolerance", ct.Drift(), dev)
	}
	if d := rep.MaxDrift(); d > 1e-9 {
		t.Errorf("MaxDrift = %v, want ~0", d)
	}
	if s := rep.String(); !strings.Contains(s, "remaps") || !strings.Contains(s, "smart-bitonic") {
		t.Errorf("String() missing content:\n%s", s)
	}
}

// Short-message mode swaps the comm-time closed form (TotalShort); the
// exactness guarantee holds there too.
func TestSortReportShortMessages(t *testing.T) {
	keys := randomKeys(t, 1<<12)
	var rep SortReport
	_, err := Sort(keys, Config{
		Processors:    4,
		ShortMessages: true,
		Observe:       func(r SortReport) { rep = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.MaxDrift(); d > 1e-9 {
		t.Errorf("MaxDrift = %v, want ~0; report:\n%s", d, rep)
	}
}

// The baselines have their own closed forms; cyclic-blocked predicts
// all three metrics, blocked-merge volume and messages (its remote
// steps are pairwise exchanges, not remaps).
func TestSortReportBaselines(t *testing.T) {
	for _, tc := range []struct {
		alg        Algorithm
		wantRemaps bool
	}{
		{CyclicBlockedBitonic, true},
		{BlockedMergeBitonic, false},
	} {
		keys := randomKeys(t, 1<<12)
		var rep SortReport
		_, err := Sort(keys, Config{
			Processors: 4,
			Algorithm:  tc.alg,
			Observe:    func(r SortReport) { rep = r },
		})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		names := map[string]bool{}
		for _, q := range rep.Quantities {
			names[q.Name] = true
		}
		if names["remaps"] != tc.wantRemaps {
			t.Errorf("%v: remaps quantity present=%v, want %v", tc.alg, names["remaps"], tc.wantRemaps)
		}
		if d := rep.MaxDrift(); d > 1e-9 {
			t.Errorf("%v: MaxDrift = %v, want ~0; report:\n%s", tc.alg, d, rep)
		}
	}
}

// Native runs predict the communication metrics (exact, they are
// counts) but not comm-time (the model does not describe shared-memory
// transfers).
func TestSortReportNative(t *testing.T) {
	keys := randomKeys(t, 1<<12)
	var rep SortReport
	_, err := Sort(keys, Config{
		Processors: 4,
		Backend:    Native,
		Observe:    func(r SortReport) { rep = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range rep.Quantities {
		if q.Name == "comm-time" {
			t.Error("native report should not include comm-time")
		}
		if d := q.Drift(); d != 1 {
			t.Errorf("%s drift = %v, want exactly 1 (counts are backend-independent)", q.Name, d)
		}
	}
	if len(rep.Quantities) != 3 {
		t.Errorf("want 3 quantities (remaps, volume, messages), got %v", rep.Quantities)
	}
}

// Sample sort and P=1 have no closed form: the report says so instead
// of inventing numbers.
func TestSortReportUnpredictable(t *testing.T) {
	keys := randomKeys(t, 1<<10)
	var rep SortReport
	if _, err := Sort(keys, Config{
		Processors: 4,
		Algorithm:  SampleSort,
		Observe:    func(r SortReport) { rep = r },
	}); err != nil {
		t.Fatal(err)
	}
	if len(rep.Quantities) != 0 || rep.Note == "" {
		t.Errorf("sample sort: want empty quantities with note, got %+v", rep)
	}
	if _, err := Sort(randomKeys(t, 1<<8), Config{
		Processors: 1,
		Observe:    func(r SortReport) { rep = r },
	}); err != nil {
		t.Fatal(err)
	}
	if len(rep.Quantities) != 0 || rep.Note == "" {
		t.Errorf("P=1: want empty quantities with note, got %+v", rep)
	}
}

func TestDriftQuantityEdgeCases(t *testing.T) {
	if d := (DriftQuantity{Predicted: 0, Measured: 0}).Drift(); d != 1 {
		t.Errorf("0/0 drift = %v, want 1", d)
	}
	if d := (DriftQuantity{Predicted: 0, Measured: 3}).Drift(); !math.IsInf(d, 1) {
		t.Errorf("3/0 drift = %v, want +Inf", d)
	}
	r := SortReport{Quantities: []DriftQuantity{{Name: "x", Measured: 1, Predicted: 0}}}
	if d := r.MaxDrift(); !math.IsInf(d, 1) {
		t.Errorf("MaxDrift with zero prediction = %v, want +Inf", d)
	}
}

// A full Config.Obs pipeline over both backends: the Chrome sink must
// see one track per processor with spans for every phase of every
// round, the metrics sink must count the run, and the events stream
// must stay empty for a clean run.
func TestSortObsIntegration(t *testing.T) {
	for _, backend := range []Backend{Simulated, Native} {
		keys := randomKeys(t, 1<<12)
		const P = 4
		ct := obs.NewChromeTrace()
		mx := obs.NewMetrics()
		_, err := Sort(keys, Config{
			Processors: P,
			Backend:    backend,
			Obs:        obs.Multi(ct, mx),
		})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		spans := ct.Spans()
		if len(spans) == 0 {
			t.Fatalf("%v: no spans recorded", backend)
		}
		// Every processor appears, and every round of every processor
		// has compute and transfer activity.
		type procRound struct{ proc, round int }
		havePhase := map[procRound]map[obs.Phase]bool{}
		procs := map[int]bool{}
		for _, s := range spans {
			procs[s.Proc] = true
			pr := procRound{s.Proc, s.Round}
			if havePhase[pr] == nil {
				havePhase[pr] = map[obs.Phase]bool{}
			}
			havePhase[pr][s.Phase] = true
		}
		if len(procs) != P {
			t.Errorf("%v: spans cover %d processors, want %d", backend, len(procs), P)
		}
		for pr, phases := range havePhase {
			if !phases[obs.PhaseCompute] {
				t.Errorf("%v: proc %d round %d has no compute span", backend, pr.proc, pr.round)
			}
		}
		if got := mx.RunCount("ok"); got != 1 {
			t.Errorf("%v: RunCount(ok) = %v, want 1", backend, got)
		}
		if got := mx.EventCount(obs.EventAbort); got != 0 {
			t.Errorf("%v: abort events = %v, want 0", backend, got)
		}
	}
}
