package parbitonic_test

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"

	"parbitonic"
	"parbitonic/internal/workload"
)

func sortSlice(buf []uint32) {
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
}

var backends = []struct {
	name string
	b    parbitonic.Backend
}{
	{"simulated", parbitonic.Simulated},
	{"native", parbitonic.Native},
}

var allAlgorithms = []parbitonic.Algorithm{
	parbitonic.SmartBitonic,
	parbitonic.CyclicBlockedBitonic,
	parbitonic.BlockedMergeBitonic,
	parbitonic.SampleSort,
	parbitonic.RadixSort,
}

// TestBackendMatrix cross-checks every Algorithm x Backend pair against
// the sequential reference sort over several machine and data shapes.
func TestBackendMatrix(t *testing.T) {
	shapes := []struct{ p, n int }{
		{1, 256},
		{2, 128},
		{4, 64},
		{8, 64}, // CyclicBlocked needs N >= P*P: 512 >= 64
	}
	dists := []struct {
		name string
		d    workload.Dist
	}{
		{"uniform", workload.Uniform31},
		{"fewdistinct", workload.FewDistinct},
		{"reverse", workload.Reverse},
	}
	for _, bk := range backends {
		for _, alg := range allAlgorithms {
			for _, sh := range shapes {
				for _, di := range dists {
					keys := workload.Keys(di.d, sh.p*sh.n, 7)
					want := slices.Clone(keys)
					slices.Sort(want)
					res, err := parbitonic.Sort(keys, parbitonic.Config{
						Processors: sh.p,
						Algorithm:  alg,
						Backend:    bk.b,
					})
					if err != nil {
						t.Fatalf("%s/%v p=%d n=%d %s: %v", bk.name, alg, sh.p, sh.n, di.name, err)
					}
					if !slices.Equal(keys, want) {
						t.Fatalf("%s/%v p=%d n=%d %s: output differs from reference sort", bk.name, alg, sh.p, sh.n, di.name)
					}
					if res.Keys != sh.p*sh.n {
						t.Fatalf("%s/%v: Result.Keys=%d want %d", bk.name, alg, res.Keys, sh.p*sh.n)
					}
					if res.Time < 0 {
						t.Fatalf("%s/%v: negative time %v", bk.name, alg, res.Time)
					}
				}
			}
		}
	}
}

// TestSortPaddedProperty is a testing/quick property test: for random
// lengths and contents, SortPadded on either backend returns a
// permutation of the input in ascending order.
func TestSortPaddedProperty(t *testing.T) {
	for _, bk := range backends {
		prop := func(raw []uint32, pSel uint8) bool {
			if len(raw) == 0 {
				raw = []uint32{42}
			}
			if len(raw) > 1<<12 {
				raw = raw[:1<<12]
			}
			p := 1 << (pSel % 4) // 1, 2, 4, 8
			keys := slices.Clone(raw)
			if _, err := parbitonic.SortPadded(keys, parbitonic.Config{
				Processors: p,
				Backend:    bk.b,
			}); err != nil {
				t.Logf("%s: SortPadded(len=%d, p=%d): %v", bk.name, len(raw), p, err)
				return false
			}
			want := slices.Clone(raw)
			slices.Sort(want)
			return slices.Equal(keys, want)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%s: %v", bk.name, err)
		}
	}
}

// TestSortPaddedMinShare pins the rounding edge SortPadded must handle:
// fewer keys than processors forces the per-processor share up to the
// bitonic minimum of two keys (n = 1 -> 2).
func TestSortPaddedMinShare(t *testing.T) {
	for _, bk := range backends {
		for _, tc := range []struct{ keys, p int }{
			{1, 2}, {1, 8}, {3, 4}, {5, 8}, {7, 8}, {9, 8},
		} {
			rng := rand.New(rand.NewSource(int64(tc.keys*100 + tc.p)))
			keys := make([]uint32, tc.keys)
			for i := range keys {
				keys[i] = rng.Uint32()
			}
			want := slices.Clone(keys)
			slices.Sort(want)
			res, err := parbitonic.SortPadded(keys, parbitonic.Config{
				Processors: tc.p,
				Backend:    bk.b,
			})
			if err != nil {
				t.Fatalf("%s: SortPadded(%d keys, p=%d): %v", bk.name, tc.keys, tc.p, err)
			}
			if !slices.Equal(keys, want) {
				t.Fatalf("%s: SortPadded(%d keys, p=%d) not sorted: %v", bk.name, tc.keys, tc.p, keys)
			}
			if minTotal := 2 * tc.p; tc.keys < minTotal && res.Keys != minTotal {
				t.Fatalf("%s: padded run sorted %d keys, want the %d-key minimum", bk.name, res.Keys, minTotal)
			}
		}
	}
}

// TestNativeTracedRace runs a traced native sort with more workers than
// cores so goroutine interleaving, the buffer pool, the zero-copy
// exchange and the trace recorder are all exercised under the race
// detector (CI runs this file with -race).
func TestNativeTracedRace(t *testing.T) {
	for _, alg := range allAlgorithms {
		rec := new(parbitonic.TraceRecorder)
		keys := workload.Keys(workload.Uniform31, 8*256, 11)
		want := slices.Clone(keys)
		slices.Sort(want)
		res, err := parbitonic.Sort(keys, parbitonic.Config{
			Processors: 8,
			Algorithm:  alg,
			Backend:    parbitonic.Native,
			Trace:      rec,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !slices.Equal(keys, want) {
			t.Fatalf("%v: traced native sort incorrect", alg)
		}
		if res.Time <= 0 {
			t.Fatalf("%v: wall time %v, want > 0", alg, res.Time)
		}
		if ws := rec.WaitShare(); ws < 0 || ws > 1 {
			t.Fatalf("%v: wait share %v out of [0,1]", alg, ws)
		}
		if rec.Timeline(60) == "" {
			t.Fatalf("%v: empty timeline from traced native run", alg)
		}
	}
}

// BenchmarkNativeVsStdlib pits the native-backend smart bitonic sort
// against the stdlib sequential sorts on 1M-16M uniform keys. With
// GOMAXPROCS >= 4 the parallel sort should win; on fewer cores the
// numbers show the oversubscription penalty honestly.
func BenchmarkNativeVsStdlib(b *testing.B) {
	for _, total := range []int{1 << 20, 1 << 22, 1 << 24} {
		src := workload.Keys(workload.Uniform31, total, 1996)
		buf := make([]uint32, total)

		b.Run(sizeName(total)+"/native-smart", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if _, err := parbitonic.Sort(buf, parbitonic.Config{
					Processors: 4,
					Backend:    parbitonic.Native,
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportNsPerKey(b, total)
		})
		b.Run(sizeName(total)+"/slices.Sort", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				slices.Sort(buf)
			}
			reportNsPerKey(b, total)
		})
		b.Run(sizeName(total)+"/sort.Slice", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				sortSlice(buf)
			}
			reportNsPerKey(b, total)
		})
	}
}

// reportNsPerKey normalizes the measured wall time to a per-key figure
// so differently-sized runs compare directly.
func reportNsPerKey(b *testing.B, keys int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(keys), "ns/key")
}

func sizeName(total int) string {
	switch {
	case total >= 1<<20:
		return itoa(total>>20) + "M"
	default:
		return itoa(total>>10) + "K"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
